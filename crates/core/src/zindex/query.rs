//! Query execution: the shared leaf-interval scan kernel.
//!
//! Every read path of the Z-index — materializing range queries, counting,
//! streaming, and the candidate collection behind kNN — funnels through one
//! kernel, [`ZIndex::scan_range`]. The kernel walks the leaf interval
//! `[leaf(BL(q)) : leaf(TR(q))]` of Algorithm 2, applies the look-ahead
//! skipping of Section 5 exactly once (no per-query-type duplication), and
//! hands each relevant page to a [`RangeVisitor`]. Visitors decide what
//! happens to matching points: collect them, count them, or stream them to a
//! caller-supplied closure. Filtering happens in place via the storage
//! layer's visitor primitives, so non-materializing paths allocate nothing.
//!
//! The paper's cost model (Eq. 5) charges queries by bounding boxes checked
//! and points compared; because all paths share this kernel, those counters
//! are identical whichever execution mode the caller picks — only the
//! per-match work differs.

use super::ZIndex;
use crate::engine::{
    run_full_sweep, BatchProjection, PointBatchKernel, PointBatchResponse, RangeBatchKernel,
    RangeBatchOutput, RangeBatchRequest, RangeBatchResponse, ShardBounds, ShardedRangeBatchKernel,
    SweepInterval,
};
use crate::node::{NodeRef, LOOKAHEAD_END};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;
use wazi_geom::{Point, Rect};
use wazi_storage::{ExecStats, Page};

impl RangeBatchKernel for ZIndex {
    fn run_range_batch(&self, requests: &[RangeBatchRequest]) -> RangeBatchResponse {
        if self.leaves.is_empty() {
            return RangeBatchResponse::zeroed(requests);
        }
        run_full_sweep(self, requests, self.leaves.len() as u32)
    }

    fn sharded(&self) -> Option<&dyn ShardedRangeBatchKernel> {
        if self.leaves.is_empty() {
            None
        } else {
            Some(self)
        }
    }
}

impl ShardedRangeBatchKernel for ZIndex {
    /// Projects every request's corners once (Algorithm 1 per corner,
    /// charged to the request exactly as the sequential kernel charges its
    /// own projections), yielding the leaf interval `[leaf(BL) : leaf(TR)]`
    /// each request's sweep covers.
    fn project_batch(&self, requests: &[RangeBatchRequest]) -> BatchProjection {
        let start = Instant::now();
        let mut per_query = vec![ExecStats::default(); requests.len()];
        let intervals = requests
            .iter()
            .zip(&mut per_query)
            .map(|(request, stats)| {
                let lo = self.locate_leaf(&request.rect.bl(), stats);
                let hi = self.locate_leaf(&request.rect.tr(), stats);
                debug_assert!(lo <= hi, "monotone orderings visit BL before TR");
                SweepInterval { lo, hi }
            })
            .collect();
        BatchProjection {
            intervals,
            per_query,
            elapsed_ns: start.elapsed().as_nanos() as u64,
        }
    }

    /// The fused sweep for the requests owned by one shard.
    ///
    /// Ownership is by entry leaf: the shard whose bounds contain a
    /// request's `interval.lo` sweeps the request over its **whole**
    /// interval — intervals never split across shards, so each request's
    /// walk is its solo sequential walk, look-ahead jumps included, and no
    /// skip-cursor state is ever handed across a shard boundary (the
    /// zero-overhead handoff). Per-request bounding-box checks and skip
    /// counts are therefore identical to the sequential walk's — and to the
    /// single fused sweep's — whatever the shard plan.
    ///
    /// The sweep maintains the shard's active set *incrementally*: requests
    /// enter at their interval's first leaf and exit when their cursor runs
    /// past its last — there is no per-leaf re-filtering of the whole set.
    /// Each active request carries its own **skip cursor**: the next leaf at
    /// which the request must perform a bounding-box check. A request whose
    /// cursor jumped ahead (its look-ahead pointers proved a run of leaves
    /// irrelevant, Section 5) pays nothing while the sweep serves requests
    /// still inside that run.
    ///
    /// Requests due at the current leaf live in a dense `hot` vector (in the
    /// common case an overlapping request re-arms for the very next leaf);
    /// requests parked at a future leaf wait in a min-heap keyed on their
    /// cursor, so a leaf costs only its due requests plus `O(log n)` per
    /// actual skip — never a scan over the whole active set.
    ///
    /// When at least one due request overlaps the leaf, its page is scanned
    /// **once** for all of them (charged to the shared stats); every
    /// overlapping request then filters the page's points with its own
    /// rectangle, charged per request, so comparison counts match the
    /// sequential path's. A leaf inside a crossing request's tail may also
    /// be visited by the shard owning that leaf's entries, so under a
    /// multi-shard plan a page is fetched at most once per shard that needs
    /// it — still never more than the sequential once-per-query.
    fn sweep_shard(
        &self,
        requests: &[RangeBatchRequest],
        projection: &BatchProjection,
        bounds: ShardBounds,
    ) -> RangeBatchResponse {
        let mut response = RangeBatchResponse::zeroed(requests);
        let leaf_count = self.leaves.len() as u32;
        if bounds.start >= bounds.end || bounds.start >= leaf_count {
            return response;
        }
        // Admission list: (interval start, request index) for the requests
        // entering inside this shard, sorted so they join the sweep in
        // address order. `high[qi]` is the request's exit leaf — its
        // interval's true end, never clamped to the shard.
        let mut high = vec![0u32; requests.len()];
        let mut entries: Vec<(u32, usize)> = Vec::new();
        for (qi, interval) in projection.intervals.iter().enumerate() {
            if interval.lo < bounds.start || interval.lo >= bounds.end {
                continue;
            }
            high[qi] = interval.hi.min(leaf_count - 1);
            entries.push((interval.lo, qi));
        }
        if entries.is_empty() {
            return response;
        }
        entries.sort_unstable();

        let kernel_start = Instant::now();
        let mut scan_ns = 0u64;
        let skipping = self.skipping_enabled();
        // `hot`: requests whose cursor equals the current sweep position.
        // `parked`: requests whose cursor points at a later leaf.
        let mut hot: Vec<usize> = Vec::new();
        let mut rearmed: Vec<usize> = Vec::new();
        let mut needing: Vec<usize> = Vec::new();
        let mut parked: BinaryHeap<Reverse<(u32, usize)>> = BinaryHeap::new();
        let mut next_entry = 0usize;
        let mut i = entries[0].0;
        loop {
            while next_entry < entries.len() && entries[next_entry].0 <= i {
                hot.push(entries[next_entry].1);
                next_entry += 1;
            }
            while let Some(&Reverse((cursor, qi))) = parked.peek() {
                if cursor > i {
                    break;
                }
                parked.pop();
                hot.push(qi);
            }
            if hot.is_empty() {
                // Nobody is due here: jump straight to the next admission
                // or the earliest parked cursor.
                let next_lo = entries.get(next_entry).map(|&(lo, _)| lo);
                let next_cursor = parked.peek().map(|&Reverse((cursor, _))| cursor);
                match (next_lo, next_cursor) {
                    (Some(a), Some(b)) => i = a.min(b),
                    (Some(a), None) => i = a,
                    (None, Some(b)) => i = b,
                    (None, None) => break,
                }
                continue;
            }
            let leaf = &self.leaves[i as usize];
            needing.clear();
            rearmed.clear();
            for &qi in &hot {
                let rect = &requests[qi].rect;
                let stats = &mut response.per_query[qi];
                stats.bbs_checked += 1;
                if !leaf.bbox.is_empty() && leaf.bbox.overlaps(rect) {
                    needing.push(qi);
                    if i < high[qi] {
                        rearmed.push(qi);
                    }
                    continue;
                }
                // Irrelevant to this request: follow its own look-ahead
                // pointers as far as they allow, exactly like the
                // sequential walk (the jump target is per request, never
                // clamped by other members of the batch).
                let mut target = i + 1;
                if skipping {
                    if let Some(lookahead) = leaf.lookahead {
                        for criterion in leaf.irrelevancy_criteria(rect) {
                            let t = lookahead.get(criterion);
                            let t = if t == LOOKAHEAD_END { high[qi] + 1 } else { t };
                            target = target.max(t);
                        }
                    }
                }
                // Charged exactly as the sequential walk charges its own
                // jump (`scan_range`): the full jump distance, never
                // clamped — the request's whole walk lives in this shard.
                stats.leaves_skipped += u64::from(target - (i + 1));
                if target == i + 1 && i < high[qi] {
                    rearmed.push(qi);
                } else if target <= high[qi] {
                    parked.push(Reverse((target, qi)));
                }
            }
            if !needing.is_empty() {
                // One pass over the page on behalf of every overlapping
                // request: the page visit is shared work, the point
                // comparisons stay attributed per request.
                let scan_start = Instant::now();
                response.shared.pages_scanned += 1;
                let points = self.store.page(leaf.page).points();
                for &qi in &needing {
                    // Copy the rectangle into a local: the hot filter loop
                    // must not reload its bounds through the request slice,
                    // which the optimiser cannot prove disjoint from the
                    // output it writes.
                    let rect = requests[qi].rect;
                    let stats = &mut response.per_query[qi];
                    stats.points_scanned += points.len() as u64;
                    match &mut response.outputs[qi] {
                        RangeBatchOutput::Points(out) => {
                            let before = out.len();
                            for p in points {
                                if rect.contains(p) {
                                    out.push(*p);
                                }
                            }
                            stats.results += (out.len() - before) as u64;
                        }
                        RangeBatchOutput::Count(count) => {
                            let mut matches = 0u64;
                            for p in points {
                                matches += u64::from(rect.contains(p));
                            }
                            *count += matches;
                            stats.results += matches;
                        }
                    }
                }
                scan_ns += scan_start.elapsed().as_nanos() as u64;
            }
            std::mem::swap(&mut hot, &mut rearmed);
            i += 1;
        }
        response
            .shared
            .charge_kernel(kernel_start.elapsed().as_nanos() as u64, scan_ns);
        response
    }

    /// Points per leaf, in leaf order: the scan-work weights the engine's
    /// work-weighted shard planner balances.
    fn address_counts(&self) -> Option<Vec<u64>> {
        Some(self.leaves.iter().map(|leaf| leaf.count as u64).collect())
    }
}

/// The Z-index's fused point-probe kernel: the owning-page address is the
/// leaf index found by the Algorithm-1 descent, charged per probe exactly
/// like the sequential probe's own descent; a leaf's page is then fetched
/// once for all probes grouped onto it, while every probe still pays its
/// own point comparisons.
impl PointBatchKernel for ZIndex {
    fn locate_probes(&self, probes: &[Point], per_query: &mut [ExecStats]) -> Vec<u64> {
        probes
            .iter()
            .zip(per_query)
            .map(|(p, stats)| u64::from(self.locate_leaf(p, stats)))
            .collect()
    }

    fn probe_page(
        &self,
        address: u64,
        group: &[(usize, Point)],
        response: &mut PointBatchResponse,
    ) {
        let leaf = &self.leaves[address as usize];
        // The page is fetched lazily, once for the whole group: probes
        // outside the leaf's tight bounding box answer without touching it,
        // exactly like the sequential probe.
        let mut page: Option<&Page> = None;
        for &(slot, p) in group {
            if leaf.count == 0 || !leaf.bbox.contains(&p) {
                continue;
            }
            let page = *page.get_or_insert_with(|| {
                response.shared.pages_scanned += 1;
                self.store.page(leaf.page)
            });
            // Per-probe comparisons are charged by `Page::probe`'s one
            // canonical rule — only the page visit itself moved to the
            // shared stats above.
            let stats = &mut response.per_query[slot];
            if page.probe_shared(&p, stats) {
                stats.results += 1;
                response.found[slot] = true;
            }
        }
    }
}

/// A consumer of the scan kernel: receives every page whose leaf bounding
/// box overlaps the query, in leaf order.
pub(crate) trait RangeVisitor {
    /// Processes one relevant page. Implementations are expected to charge
    /// `stats` through the storage layer's scan primitives.
    fn visit_page(&mut self, page: &Page, query: &Rect, stats: &mut ExecStats);
}

/// Collects matching points into a result vector (the classic range query).
struct CollectVisitor {
    out: Vec<Point>,
}

impl RangeVisitor for CollectVisitor {
    fn visit_page(&mut self, page: &Page, query: &Rect, stats: &mut ExecStats) {
        page.filter_into(query, &mut self.out, stats);
    }
}

/// Counts matching points without materializing them.
struct CountVisitor {
    count: u64,
}

impl RangeVisitor for CountVisitor {
    fn visit_page(&mut self, page: &Page, query: &Rect, stats: &mut ExecStats) {
        self.count += page.count_in(query, stats);
    }
}

/// Streams matching points to a caller-supplied closure.
struct StreamVisitor<'a> {
    visit: &'a mut dyn FnMut(&Point),
    matched: u64,
}

impl RangeVisitor for StreamVisitor<'_> {
    fn visit_page(&mut self, page: &Page, query: &Rect, stats: &mut ExecStats) {
        let visit = &mut *self.visit;
        let matched = &mut self.matched;
        page.for_each_in(query, stats, |p| {
            *matched += 1;
            visit(p);
        });
    }
}

impl ZIndex {
    /// Algorithm 1: descends from the root to the leaf whose cell contains
    /// `p`, returning its index in the leaf list.
    pub(crate) fn locate_leaf(&self, p: &Point, stats: &mut ExecStats) -> u32 {
        let mut node = self.root;
        loop {
            match node {
                NodeRef::Leaf(i) => return i,
                NodeRef::Internal(i) => {
                    stats.nodes_visited += 1;
                    node = self.nodes[i as usize].child_for(p);
                }
            }
        }
    }

    /// The scan kernel (Algorithm 2 + Section 5 skipping): walks the leaf
    /// interval spanned by the query corners, follows look-ahead pointers
    /// over irrelevant runs when skipping is enabled, and hands every
    /// overlapping leaf's page to `visitor` — no intermediate list of
    /// relevant leaves is materialized.
    ///
    /// Timing: page visits are accumulated as scan-phase time, everything
    /// else (corner location, bounding-box checks, pointer hops) as
    /// projection-phase time, matching the split of Figure 9.
    fn scan_range<V: RangeVisitor>(&self, query: &Rect, stats: &mut ExecStats, visitor: &mut V) {
        let kernel_start = Instant::now();
        let mut scan_ns = 0u64;
        if !self.leaves.is_empty() {
            let low = self.locate_leaf(&query.bl(), stats);
            let high = self.locate_leaf(&query.tr(), stats);
            debug_assert!(low <= high, "monotone orderings visit BL before TR");
            let skipping = self.skipping_enabled();
            let mut i = low;
            while i <= high {
                let leaf = &self.leaves[i as usize];
                stats.bbs_checked += 1;
                if !leaf.bbox.is_empty() && leaf.bbox.overlaps(query) {
                    let scan_start = Instant::now();
                    visitor.visit_page(self.store.page(leaf.page), query, stats);
                    scan_ns += scan_start.elapsed().as_nanos() as u64;
                    i += 1;
                    continue;
                }
                let mut next = i + 1;
                if skipping {
                    if let Some(lookahead) = leaf.lookahead {
                        for criterion in leaf.irrelevancy_criteria(query) {
                            let target = lookahead.get(criterion);
                            let target = if target == LOOKAHEAD_END {
                                high + 1
                            } else {
                                target
                            };
                            next = next.max(target);
                        }
                    }
                }
                stats.leaves_skipped += u64::from(next - (i + 1));
                i = next;
            }
        }
        stats.charge_kernel(kernel_start.elapsed().as_nanos() as u64, scan_ns);
    }

    /// Materializing range query: returns every indexed point inside
    /// `query`.
    pub(crate) fn execute_range_query(&self, query: &Rect, stats: &mut ExecStats) -> Vec<Point> {
        let mut visitor = CollectVisitor { out: Vec::new() };
        self.scan_range(query, stats, &mut visitor);
        stats.results += visitor.out.len() as u64;
        visitor.out
    }

    /// Counting range query: the size of the result set, computed without
    /// materializing it.
    pub(crate) fn execute_range_count(&self, query: &Rect, stats: &mut ExecStats) -> u64 {
        let mut visitor = CountVisitor { count: 0 };
        self.scan_range(query, stats, &mut visitor);
        stats.results += visitor.count;
        visitor.count
    }

    /// Streaming range query: invokes `visit` for every indexed point inside
    /// `query` without building an intermediate vector.
    pub(crate) fn execute_range_for_each(
        &self,
        query: &Rect,
        stats: &mut ExecStats,
        visit: &mut dyn FnMut(&Point),
    ) {
        let mut visitor = StreamVisitor { visit, matched: 0 };
        self.scan_range(query, stats, &mut visitor);
        stats.results += visitor.matched;
    }

    /// Point query: locate the owning leaf (Algorithm 1), then probe its
    /// page.
    pub(crate) fn execute_point_query(&self, p: &Point, stats: &mut ExecStats) -> bool {
        if self.leaves.is_empty() {
            return false;
        }
        let projection_start = Instant::now();
        let leaf = self.locate_leaf(p, stats);
        stats.add_projection(projection_start.elapsed());

        let scan_start = Instant::now();
        let leaf = &self.leaves[leaf as usize];
        let found = if leaf.count == 0 || !leaf.bbox.contains(p) {
            false
        } else {
            self.store.probe_page(leaf.page, p, stats)
        };
        stats.add_scan(scan_start.elapsed());
        if found {
            stats.results += 1;
        }
        found
    }
}
