//! Unit tests of the Z-index: query correctness on every execution path of
//! the shared scan kernel, updates, and structural invariants.

use crate::config::{DensityMode, ZIndexConfig};
use crate::index::{IndexError, SpatialIndex};
use crate::ZIndexBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wazi_geom::{Point, Rect};
use wazi_storage::ExecStats;

fn uniform_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
        .collect()
}

fn skewed_queries(n: usize, seed: u64) -> Vec<Rect> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let cx = 0.2 + rng.gen::<f64>() * 0.2;
            let cy = 0.6 + rng.gen::<f64>() * 0.2;
            Rect::query_box(&Rect::UNIT, Point::new(cx, cy), 0.001, 1.0)
        })
        .collect()
}

fn brute_force(points: &[Point], query: &Rect) -> Vec<Point> {
    let mut r: Vec<Point> = points
        .iter()
        .copied()
        .filter(|p| query.contains(p))
        .collect();
    r.sort_by(|a, b| a.lex_cmp(b));
    r
}

fn small_config() -> ZIndexConfig {
    ZIndexConfig::wazi().with_leaf_capacity(32).with_kappa(8)
}

#[test]
fn base_index_answers_range_queries_exactly() {
    let points = uniform_points(3_000, 1);
    let index = ZIndexBuilder::base()
        .with_config(ZIndexConfig::base().with_leaf_capacity(64))
        .build(points.clone(), &[]);
    assert_eq!(index.len(), points.len());
    let mut stats = ExecStats::default();
    for query in [
        Rect::from_coords(0.1, 0.1, 0.3, 0.3),
        Rect::from_coords(0.0, 0.0, 1.0, 1.0),
        Rect::from_coords(0.45, 0.45, 0.55, 0.55),
        Rect::from_coords(0.9, 0.0, 1.0, 0.1),
    ] {
        let mut got = index.range_query(&query, &mut stats);
        got.sort_by(|a, b| a.lex_cmp(b));
        assert_eq!(got, brute_force(&points, &query));
    }
}

#[test]
fn wazi_index_answers_range_queries_exactly() {
    let points = uniform_points(3_000, 2);
    let queries = skewed_queries(200, 3);
    let index = ZIndexBuilder::wazi()
        .with_config(small_config())
        .build(points.clone(), &queries);
    index.verify_lookahead_invariant().expect("skip pointers");
    let mut stats = ExecStats::default();
    for query in queries.iter().take(50) {
        let mut got = index.range_query(query, &mut stats);
        got.sort_by(|a, b| a.lex_cmp(b));
        assert_eq!(got, brute_force(&points, query));
    }
    // Also exact on queries far away from the training workload.
    for query in [
        Rect::from_coords(0.8, 0.05, 0.95, 0.2),
        Rect::from_coords(0.0, 0.0, 1.0, 1.0),
    ] {
        let mut got = index.range_query(&query, &mut stats);
        got.sort_by(|a, b| a.lex_cmp(b));
        assert_eq!(got, brute_force(&points, &query));
    }
}

/// Every execution mode of the scan kernel must agree: the count path and
/// the streaming path see exactly the multiset the materializing path
/// returns, and all three charge identical work counters.
#[test]
fn kernel_execution_modes_agree_and_charge_identical_work() {
    let points = uniform_points(4_000, 21);
    let queries = skewed_queries(60, 22);
    let index = ZIndexBuilder::wazi()
        .with_config(small_config())
        .build(points.clone(), &queries);
    for query in queries.iter().chain([Rect::UNIT].iter()) {
        let mut collect_stats = ExecStats::default();
        let mut collected = index.range_query(query, &mut collect_stats);

        let mut count_stats = ExecStats::default();
        let count = index.range_count(query, &mut count_stats);

        let mut stream_stats = ExecStats::default();
        let mut streamed = Vec::new();
        index.range_for_each(query, &mut stream_stats, &mut |p| streamed.push(*p));

        assert_eq!(count, collected.len() as u64);
        collected.sort_by(|a, b| a.lex_cmp(b));
        streamed.sort_by(|a, b| a.lex_cmp(b));
        assert_eq!(collected, streamed);

        for (label, other) in [("count", &count_stats), ("stream", &stream_stats)] {
            assert_eq!(collect_stats.bbs_checked, other.bbs_checked, "{label}");
            assert_eq!(collect_stats.pages_scanned, other.pages_scanned, "{label}");
            assert_eq!(
                collect_stats.points_scanned, other.points_scanned,
                "{label}"
            );
            assert_eq!(collect_stats.results, other.results, "{label}");
            assert_eq!(
                collect_stats.leaves_skipped, other.leaves_skipped,
                "{label}"
            );
        }
    }
}

#[test]
fn point_queries_find_every_indexed_point() {
    let points = uniform_points(2_000, 4);
    let queries = skewed_queries(100, 5);
    let index = ZIndexBuilder::wazi()
        .with_config(small_config())
        .build(points.clone(), &queries);
    let mut stats = ExecStats::default();
    for p in points.iter().step_by(13) {
        assert!(index.point_query(p, &mut stats), "missing point {p}");
    }
    assert!(!index.point_query(&Point::new(2.0, 2.0), &mut stats));
    assert!(!index.point_query(&Point::new(0.123456, 0.654321), &mut stats));
}

#[test]
fn exact_density_mode_builds_equivalent_results() {
    let points = uniform_points(1_500, 6);
    let queries = skewed_queries(100, 7);
    let index = ZIndexBuilder::wazi()
        .with_config(small_config().with_density(DensityMode::Exact))
        .build(points.clone(), &queries);
    let mut stats = ExecStats::default();
    for query in queries.iter().take(20) {
        let mut got = index.range_query(query, &mut stats);
        got.sort_by(|a, b| a.lex_cmp(b));
        assert_eq!(got, brute_force(&points, query));
    }
}

#[test]
fn skipping_reduces_bounding_box_checks() {
    let points = uniform_points(8_000, 8);
    let queries = skewed_queries(200, 9);
    let config = small_config();
    let with_skip = ZIndexBuilder::wazi()
        .with_config(config)
        .build(points.clone(), &queries);
    let without_skip = ZIndexBuilder::wazi()
        .with_config(
            ZIndexConfig::wazi_without_skipping()
                .with_leaf_capacity(32)
                .with_kappa(8),
        )
        .build(points.clone(), &queries);
    let mut skip_stats = ExecStats::default();
    let mut plain_stats = ExecStats::default();
    for q in &queries {
        with_skip.range_query(q, &mut skip_stats);
        without_skip.range_query(q, &mut plain_stats);
    }
    assert_eq!(skip_stats.results, plain_stats.results);
    assert!(
        skip_stats.bbs_checked < plain_stats.bbs_checked,
        "skipping should check fewer bounding boxes ({} vs {})",
        skip_stats.bbs_checked,
        plain_stats.bbs_checked
    );
}

#[test]
fn wazi_does_less_total_work_than_base_on_a_skewed_workload() {
    let points = uniform_points(10_000, 10);
    let queries = skewed_queries(300, 11);
    let base = ZIndexBuilder::base()
        .with_config(ZIndexConfig::base().with_leaf_capacity(32))
        .build(points.clone(), &[]);
    let wazi = ZIndexBuilder::wazi()
        .with_config(small_config())
        .build(points.clone(), &queries);
    let mut base_stats = ExecStats::default();
    let mut wazi_stats = ExecStats::default();
    for q in &queries {
        base.range_query(q, &mut base_stats);
        wazi.range_query(q, &mut wazi_stats);
    }
    assert_eq!(base_stats.results, wazi_stats.results);
    // Total scanning-phase work: points compared plus bounding boxes
    // checked. The skipping mechanism removes the bulk of the bounding
    // box comparisons, which dominates on this workload.
    let base_work = base_stats.points_scanned + base_stats.bbs_checked;
    let wazi_work = wazi_stats.points_scanned + wazi_stats.bbs_checked;
    assert!(
        wazi_work < base_work,
        "WaZI total work ({wazi_work}) should be below Base ({base_work})"
    );
    assert!(
        wazi_stats.bbs_checked * 2 < base_stats.bbs_checked,
        "skipping should cut bounding-box checks at least in half ({} vs {})",
        wazi_stats.bbs_checked,
        base_stats.bbs_checked
    );
}

/// Mirrors the paper's evaluation regime: clustered (OSM-like) data with
/// a query workload concentrated on a sub-region (Gowalla-like
/// check-ins). Adaptive partitioning should reduce the points scanned
/// relative to the base median layout in this setting.
#[test]
fn wazi_scans_fewer_points_on_clustered_data() {
    let mut rng = StdRng::seed_from_u64(20);
    let mut points = Vec::new();
    // Three dense clusters plus a sparse uniform background.
    let clusters = [(0.25, 0.7, 0.04), (0.7, 0.3, 0.06), (0.55, 0.75, 0.03)];
    for &(cx, cy, spread) in &clusters {
        for _ in 0..2_500 {
            let x = (cx + (rng.gen::<f64>() - 0.5) * spread * 4.0).clamp(0.0, 1.0);
            let y = (cy + (rng.gen::<f64>() - 0.5) * spread * 4.0).clamp(0.0, 1.0);
            points.push(Point::new(x, y));
        }
    }
    for _ in 0..2_500 {
        points.push(Point::new(rng.gen::<f64>(), rng.gen::<f64>()));
    }
    // Queries concentrate on the first cluster but are offset from its
    // centre, so the query distribution differs from the data
    // distribution (the paper's central experimental premise).
    let queries: Vec<Rect> = (0..300)
        .map(|_| {
            let cx = 0.28 + (rng.gen::<f64>() - 0.5) * 0.1;
            let cy = 0.65 + (rng.gen::<f64>() - 0.5) * 0.1;
            Rect::query_box(&Rect::UNIT, Point::new(cx, cy), 0.0005, 1.0)
        })
        .collect();

    let base = ZIndexBuilder::base()
        .with_config(ZIndexConfig::base().with_leaf_capacity(32))
        .build(points.clone(), &[]);
    let wazi = ZIndexBuilder::wazi()
        .with_config(small_config().with_kappa(16))
        .build(points.clone(), &queries);
    let mut base_stats = ExecStats::default();
    let mut wazi_stats = ExecStats::default();
    for q in &queries {
        base.range_query(q, &mut base_stats);
        wazi.range_query(q, &mut wazi_stats);
    }
    assert_eq!(base_stats.results, wazi_stats.results);
    let base_work = base_stats.points_scanned + base_stats.bbs_checked;
    let wazi_work = wazi_stats.points_scanned + wazi_stats.bbs_checked;
    assert!(
        wazi_work < base_work,
        "WaZI total work ({wazi_work}) should be below Base ({base_work}) on clustered data"
    );
}

#[test]
fn inserts_preserve_query_correctness_and_structure() {
    let points = uniform_points(1_000, 12);
    let queries = skewed_queries(50, 13);
    let mut index = ZIndexBuilder::wazi()
        .with_config(small_config())
        .build(points.clone(), &queries);
    let inserts = uniform_points(600, 14);
    for p in &inserts {
        index.insert(*p).expect("insert");
    }
    assert_eq!(index.len(), points.len() + inserts.len());
    index.verify_structure().expect("structure after inserts");
    index
        .verify_lookahead_invariant()
        .expect("pointers stay safe");

    let mut all = points.clone();
    all.extend_from_slice(&inserts);
    let mut stats = ExecStats::default();
    for query in queries.iter().take(20) {
        let mut got = index.range_query(query, &mut stats);
        got.sort_by(|a, b| a.lex_cmp(b));
        assert_eq!(got, brute_force(&all, query));
    }

    // Rebuilding the pointers restores maximal skipping and stays safe.
    index.rebuild_lookahead();
    index
        .verify_lookahead_invariant()
        .expect("rebuilt pointers");
    for query in queries.iter().take(20) {
        let mut got = index.range_query(query, &mut stats);
        got.sort_by(|a, b| a.lex_cmp(b));
        assert_eq!(got, brute_force(&all, query));
    }
}

#[test]
fn deletes_remove_points_and_keep_queries_exact() {
    let points = uniform_points(1_200, 15);
    let mut index = ZIndexBuilder::base()
        .with_config(ZIndexConfig::base().with_leaf_capacity(32))
        .build(points.clone(), &[]);
    let mut remaining = points.clone();
    for p in points.iter().step_by(3) {
        assert_eq!(index.delete(p), Ok(true));
        let pos = remaining.iter().position(|q| q == p).unwrap();
        remaining.swap_remove(pos);
    }
    assert_eq!(index.delete(&Point::new(5.0, 5.0)), Ok(false));
    assert_eq!(index.len(), remaining.len());
    index.verify_structure().expect("structure after deletes");
    let mut stats = ExecStats::default();
    let query = Rect::from_coords(0.2, 0.2, 0.8, 0.8);
    let mut got = index.range_query(&query, &mut stats);
    got.sort_by(|a, b| a.lex_cmp(b));
    assert_eq!(got, brute_force(&remaining, &query));
}

#[test]
fn insert_into_empty_index_bootstraps_a_leaf() {
    let mut index = ZIndexBuilder::wazi().build(Vec::new(), &[]);
    assert!(index.is_empty());
    index.insert(Point::new(0.5, 0.5)).expect("insert");
    index.insert(Point::new(0.25, 0.75)).expect("insert");
    assert_eq!(index.len(), 2);
    let mut stats = ExecStats::default();
    assert!(index.point_query(&Point::new(0.5, 0.5), &mut stats));
    assert_eq!(index.range_query(&Rect::UNIT, &mut stats).len(), 2);
    assert_eq!(index.range_count(&Rect::UNIT, &mut stats), 2);
}

#[test]
fn non_finite_inserts_are_rejected() {
    let mut index = ZIndexBuilder::base().build(uniform_points(100, 16), &[]);
    assert!(matches!(
        index.insert(Point::new(f64::NAN, 0.5)),
        Err(IndexError::InvalidInput(_))
    ));
    assert_eq!(index.len(), 100);
}

#[test]
fn metadata_accessors_are_consistent() {
    let points = uniform_points(2_000, 17);
    let queries = skewed_queries(100, 18);
    let index = ZIndexBuilder::wazi()
        .with_config(small_config())
        .build(points, &queries);
    assert_eq!(index.name(), "WaZI");
    assert!(index.leaf_count() > 1);
    assert!(index.internal_count() >= 1);
    assert!(index.height() >= 2);
    assert!(index.size_bytes() > 0);
    assert!(index.build_report().build_ns > 0);
    assert!(index.build_report().candidates_evaluated > 0);
    assert!((0.0..=1.0).contains(&index.acbd_fraction()));
    assert!(Rect::UNIT.contains_rect(&index.data_space()));
    assert_eq!(index.data_bounds(), index.data_space());
    assert!(index.skipping_enabled());
}

#[test]
fn knn_on_zindex_matches_brute_force() {
    let points = uniform_points(2_000, 19);
    let index = ZIndexBuilder::base()
        .with_config(ZIndexConfig::base().with_leaf_capacity(64))
        .build(points.clone(), &[]);
    let mut stats = ExecStats::default();
    let q = Point::new(0.33, 0.71);
    let got = index.knn(&q, 10, &mut stats);
    let mut expected = points.clone();
    expected.sort_by(|a, b| a.distance_squared(&q).total_cmp(&b.distance_squared(&q)));
    expected.truncate(10);
    assert_eq!(got, expected);
}

/// A query point far outside the data space must not poison the kNN search:
/// the final sweep is clamped to the index's data bounds instead of an
/// unbounded rectangle.
#[test]
fn knn_far_outside_the_data_space_stays_exact() {
    let points = uniform_points(500, 23);
    let index = ZIndexBuilder::base()
        .with_config(ZIndexConfig::base().with_leaf_capacity(32))
        .build(points.clone(), &[]);
    let mut stats = ExecStats::default();
    let q = Point::new(1.0e12, -5.0e11);
    let got = index.knn(&q, 5, &mut stats);
    let mut expected = points.clone();
    expected.sort_by(|a, b| a.distance_squared(&q).total_cmp(&b.distance_squared(&q)));
    expected.truncate(5);
    assert_eq!(got, expected);
}
