//! Introspection: accessors, invariant checkers and workload-cost
//! measurement used by tests, examples and the benchmark harness.

use super::ZIndex;
use crate::build::BuildReport;
use crate::config::ZIndexConfig;
use crate::lookahead;
use crate::node::{InternalNode, Leaf, NodeRef};
use wazi_geom::{CellOrdering, Rect};
use wazi_storage::ExecStats;

impl ZIndex {
    /// The construction configuration.
    pub fn config(&self) -> &ZIndexConfig {
        &self.config
    }

    /// Construction statistics (build time, candidates evaluated, chosen
    /// orderings).
    pub fn build_report(&self) -> &BuildReport {
        &self.build_report
    }

    /// Number of leaf nodes (the length of the `LeafList`).
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Number of internal nodes.
    pub fn internal_count(&self) -> usize {
        self.nodes.len()
    }

    /// Height of the tree (a single leaf has height 1).
    pub fn height(&self) -> usize {
        fn depth_of(index: &ZIndex, node: NodeRef) -> usize {
            match node {
                NodeRef::Leaf(_) => 1,
                NodeRef::Internal(i) => {
                    1 + index.nodes[i as usize]
                        .children
                        .iter()
                        .map(|c| depth_of(index, *c))
                        .max()
                        .unwrap_or(0)
                }
            }
        }
        depth_of(self, self.root)
    }

    /// Bounding box of the data the index was built over (grown by inserts).
    pub fn data_space(&self) -> Rect {
        self.data_space
    }

    /// Whether look-ahead skipping is enabled and currently active for this
    /// instance (skipping is temporarily suspended when an update outside
    /// the original data space made the pointers potentially unsafe; see
    /// [`ZIndex::rebuild_lookahead`]).
    pub fn skipping_enabled(&self) -> bool {
        self.config.skipping && !self.lookahead_stale
    }

    /// Fraction of internal cells using the alternative `acbd` ordering.
    pub fn acbd_fraction(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes
            .iter()
            .filter(|n| n.ordering == CellOrdering::Acbd)
            .count() as f64
            / self.nodes.len() as f64
    }

    /// Verifies the safety invariant of the look-ahead pointers (used by
    /// integration and property tests). Returns an error when skipping is
    /// enabled and a pointer could skip a potentially relevant leaf.
    pub fn verify_lookahead_invariant(&self) -> Result<(), String> {
        if !self.skipping_enabled() {
            return Ok(());
        }
        lookahead::verify_invariant(&self.leaves)
    }

    /// Verifies the structural invariants of the index: leaf/page counts
    /// agree, every point is stored in the leaf whose cell contains it, and
    /// the leaf list is dominance-monotone. Intended for tests.
    pub fn verify_structure(&self) -> Result<(), String> {
        let mut total = 0usize;
        for (i, leaf) in self.leaves.iter().enumerate() {
            let page = self.store.page(leaf.page);
            if page.len() != leaf.count {
                return Err(format!(
                    "leaf {i}: count {} disagrees with page length {}",
                    leaf.count,
                    page.len()
                ));
            }
            for p in page.points() {
                if !leaf.bbox.contains(p) {
                    return Err(format!("leaf {i}: point {p} outside its bounding box"));
                }
            }
            total += page.len();
        }
        if total != self.len {
            return Err(format!(
                "stored points {total} disagree with index length {}",
                self.len
            ));
        }
        // Every internal node's split point must lie inside its cell region;
        // routing (Algorithm 1) relies on the split partitioning the cell.
        for (i, node) in self.nodes.iter().enumerate() {
            if !node.region.contains(&node.split) {
                return Err(format!(
                    "internal node {i}: split point {} outside its region",
                    node.split
                ));
            }
        }
        // Dominance monotonicity across leaves (Section 3): a point stored in
        // a later leaf must never be dominated by a point stored in an
        // earlier leaf.
        for i in 0..self.leaves.len() {
            let earlier = self.store.page(self.leaves[i].page);
            for (j, later_leaf) in self.leaves.iter().enumerate().skip(i + 1) {
                let later = self.store.page(later_leaf.page);
                for a in earlier.points() {
                    for b in later.points() {
                        if b.dominated_by(a) {
                            return Err(format!(
                                "monotonicity violated: point {b} in leaf {j} is dominated by point {a} in earlier leaf {i}"
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Retrieval cost of a workload on this index measured in points
    /// compared (the quantity the cost model of Section 4 predicts).
    /// Executes through the non-materializing counting path, so the
    /// measurement charges exactly the work the cost model charges — no
    /// allocation noise.
    pub fn measured_workload_cost(&self, queries: &[Rect]) -> u64 {
        let mut stats = ExecStats::default();
        for q in queries {
            self.execute_range_count(q, &mut stats);
        }
        stats.points_scanned
    }

    /// Approximate in-memory size of the index structure in bytes.
    pub(crate) fn structure_size_bytes(&self) -> usize {
        // Table 5 reports the size of the index structure (tree nodes, leaf
        // metadata, look-ahead pointers); the clustered data pages themselves
        // are common to every index and are not counted.
        std::mem::size_of::<Self>()
            + self.nodes.len() * std::mem::size_of::<InternalNode>()
            + self.leaves.len() * std::mem::size_of::<Leaf>()
    }
}
