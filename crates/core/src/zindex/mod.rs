//! The generalized Z-index: structure definition and its [`SpatialIndex`]
//! front door.
//!
//! The implementation is layered into focused submodules:
//!
//! * `mod.rs` — the [`ZIndex`] struct, its constructors and the
//!   [`SpatialIndex`] impl, which only delegates;
//! * `query.rs` — the shared leaf-interval scan kernel behind every read
//!   path (range, count, streaming, point, kNN candidates);
//! * `update.rs` — inserts, deletes, leaf splits and look-ahead pointer
//!   maintenance;
//! * `introspect.rs` — accessors, invariant checkers and cost measurement
//!   used by tests and experiments.

mod introspect;
mod query;
#[cfg(test)]
mod tests;
mod update;

use crate::build::BuildReport;
use crate::config::ZIndexConfig;
use crate::engine::{PointBatchKernel, RangeBatchKernel};
use crate::index::{IndexError, SpatialIndex};
use crate::node::{InternalNode, Leaf, NodeRef};
use wazi_geom::{Point, Rect};
use wazi_storage::{ExecStats, PageStore};

/// A generalized Z-index instance: either the base variant (median splits,
/// `abcd` ordering) or WaZI (cost-optimised splits and orderings, optional
/// look-ahead skipping), depending on how it was built.
///
/// Construct instances through [`crate::ZIndexBuilder`] or the convenience
/// constructors [`ZIndex::build_wazi`] / [`ZIndex::build_base`].
#[derive(Debug, Clone)]
pub struct ZIndex {
    pub(crate) variant: &'static str,
    pub(crate) config: ZIndexConfig,
    pub(crate) nodes: Vec<InternalNode>,
    pub(crate) leaves: Vec<Leaf>,
    pub(crate) root: NodeRef,
    pub(crate) store: PageStore,
    pub(crate) len: usize,
    pub(crate) data_space: Rect,
    pub(crate) build_report: BuildReport,
    /// Set when an update made the look-ahead pointers potentially unsafe
    /// (a point was inserted outside its leaf's cell region, which can only
    /// happen for points outside the original data space). Skipping is
    /// disabled until [`ZIndex::rebuild_lookahead`] is called.
    pub(crate) lookahead_stale: bool,
}

impl ZIndex {
    /// Builds the paper's WaZI index (adaptive partitioning + ordering,
    /// RFDE cardinality estimation, look-ahead skipping) for a dataset and an
    /// anticipated range-query workload.
    pub fn build_wazi(points: Vec<Point>, queries: &[Rect]) -> Self {
        crate::ZIndexBuilder::wazi().build(points, queries)
    }

    /// Builds the base Z-index (median splits, `abcd` ordering, no
    /// skipping).
    pub fn build_base(points: Vec<Point>) -> Self {
        crate::ZIndexBuilder::base().build(points, &[])
    }

    /// Assembles an index from parts produced by the builder.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        variant: &'static str,
        config: ZIndexConfig,
        nodes: Vec<InternalNode>,
        leaves: Vec<Leaf>,
        root: NodeRef,
        store: PageStore,
        len: usize,
        data_space: Rect,
        build_report: BuildReport,
    ) -> Self {
        Self {
            variant,
            config,
            nodes,
            leaves,
            root,
            store,
            len,
            data_space,
            build_report,
            lookahead_stale: false,
        }
    }
}

impl SpatialIndex for ZIndex {
    fn name(&self) -> &'static str {
        self.variant
    }

    fn len(&self) -> usize {
        self.len
    }

    fn data_bounds(&self) -> Rect {
        self.data_space
    }

    fn range_query(&self, query: &Rect, stats: &mut ExecStats) -> Vec<Point> {
        self.execute_range_query(query, stats)
    }

    fn range_count(&self, query: &Rect, stats: &mut ExecStats) -> u64 {
        self.execute_range_count(query, stats)
    }

    fn range_for_each(&self, query: &Rect, stats: &mut ExecStats, visit: &mut dyn FnMut(&Point)) {
        self.execute_range_for_each(query, stats, visit)
    }

    fn point_query(&self, p: &Point, stats: &mut ExecStats) -> bool {
        self.execute_point_query(p, stats)
    }

    fn insert(&mut self, p: Point) -> Result<(), IndexError> {
        self.insert_point(p)
    }

    fn delete(&mut self, p: &Point) -> Result<bool, IndexError> {
        self.delete_point(p)
    }

    fn maintain(&mut self) {
        self.rebuild_lookahead();
    }

    fn size_bytes(&self) -> usize {
        self.structure_size_bytes()
    }

    fn range_batch_kernel(&self) -> Option<&dyn RangeBatchKernel> {
        Some(self)
    }

    fn point_batch_kernel(&self) -> Option<&dyn PointBatchKernel> {
        if self.leaves.is_empty() {
            None
        } else {
            Some(self)
        }
    }
}
