//! Property-based tests for the RFDE estimator.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wazi_density::{Rfde, RfdeConfig};
use wazi_geom::{Point, Rect};

fn dataset(seed: u64, n: usize) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
        .collect()
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    ((0.0f64..1.0, 0.0f64..1.0), (0.0f64..1.0, 0.0f64..1.0)).prop_map(|(a, b)| {
        Rect::from_corners(Point::new(a.0, a.1), Point::new(b.0, b.1))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn estimates_are_bounded_by_total(seed in 0u64..8, rect in arb_rect()) {
        let points = dataset(seed, 2_000);
        let rfde = Rfde::fit(&points, RfdeConfig { trees: 2, ..Default::default() });
        let est = rfde.estimate_count(&rect);
        prop_assert!(est >= -1e-9);
        prop_assert!(est <= rfde.total_weight() + 1e-9);
        let frac = rfde.estimate_fraction(&rect);
        prop_assert!((0.0..=1.0).contains(&frac));
    }

    #[test]
    fn estimates_are_monotone_in_nested_queries(seed in 0u64..4, rect in arb_rect(), shrink in 0.1f64..0.9) {
        let points = dataset(seed, 2_000);
        let rfde = Rfde::fit(&points, RfdeConfig { trees: 2, ..Default::default() });
        // Shrink the rectangle towards its centre: the estimate of the inner
        // rectangle can never exceed the estimate of the outer one because
        // every node/leaf contribution is monotone in the query.
        let c = rect.center();
        let inner = Rect::from_corners(
            Point::new(c.x + (rect.lo.x - c.x) * shrink, c.y + (rect.lo.y - c.y) * shrink),
            Point::new(c.x + (rect.hi.x - c.x) * shrink, c.y + (rect.hi.y - c.y) * shrink),
        );
        let outer_est = rfde.estimate_count(&rect);
        let inner_est = rfde.estimate_count(&inner);
        prop_assert!(inner_est <= outer_est + 1e-9);
    }

    #[test]
    fn uniform_estimates_close_to_exact_counts(seed in 0u64..4, rect in arb_rect()) {
        let points = dataset(seed, 4_000);
        let rfde = Rfde::fit(&points, RfdeConfig::default());
        let exact = points.iter().filter(|p| rect.contains(p)).count() as f64;
        let est = rfde.estimate_count(&rect);
        // Loose bound: RFDE is an estimator, but on uniform data it must not
        // be wildly off (within 5% of the dataset size).
        prop_assert!((est - exact).abs() <= 200.0, "est {} vs exact {}", est, exact);
    }
}
