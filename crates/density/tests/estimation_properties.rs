//! Randomized property tests for the RFDE estimator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wazi_density::{Rfde, RfdeConfig};
use wazi_geom::{Point, Rect};

fn dataset(seed: u64, n: usize) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
        .collect()
}

fn rand_rect(rng: &mut StdRng) -> Rect {
    Rect::from_corners(
        Point::new(rng.gen::<f64>(), rng.gen::<f64>()),
        Point::new(rng.gen::<f64>(), rng.gen::<f64>()),
    )
}

#[test]
fn estimates_are_bounded_by_total() {
    let mut rng = StdRng::seed_from_u64(100);
    for seed in 0u64..8 {
        let points = dataset(seed, 2_000);
        let rfde = Rfde::fit(
            &points,
            RfdeConfig {
                trees: 2,
                ..Default::default()
            },
        );
        for _ in 0..8 {
            let rect = rand_rect(&mut rng);
            let est = rfde.estimate_count(&rect);
            assert!(est >= -1e-9);
            assert!(est <= rfde.total_weight() + 1e-9);
            let frac = rfde.estimate_fraction(&rect);
            assert!((0.0..=1.0).contains(&frac));
        }
    }
}

#[test]
fn estimates_are_monotone_in_nested_queries() {
    let mut rng = StdRng::seed_from_u64(101);
    for seed in 0u64..4 {
        let points = dataset(seed, 2_000);
        let rfde = Rfde::fit(
            &points,
            RfdeConfig {
                trees: 2,
                ..Default::default()
            },
        );
        for _ in 0..16 {
            let rect = rand_rect(&mut rng);
            let shrink = rng.gen_range(0.1f64..0.9);
            // Shrink the rectangle towards its centre: the estimate of the
            // inner rectangle can never exceed the estimate of the outer one
            // because every node/leaf contribution is monotone in the query.
            let c = rect.center();
            let inner = Rect::from_corners(
                Point::new(
                    c.x + (rect.lo.x - c.x) * shrink,
                    c.y + (rect.lo.y - c.y) * shrink,
                ),
                Point::new(
                    c.x + (rect.hi.x - c.x) * shrink,
                    c.y + (rect.hi.y - c.y) * shrink,
                ),
            );
            let outer_est = rfde.estimate_count(&rect);
            let inner_est = rfde.estimate_count(&inner);
            assert!(
                inner_est <= outer_est + 1e-9,
                "inner {inner_est} > outer {outer_est}"
            );
        }
    }
}

#[test]
fn uniform_estimates_close_to_exact_counts() {
    let mut rng = StdRng::seed_from_u64(102);
    for seed in 0u64..4 {
        let points = dataset(seed, 4_000);
        let rfde = Rfde::fit(&points, RfdeConfig::default());
        for _ in 0..16 {
            let rect = rand_rect(&mut rng);
            let exact = points.iter().filter(|p| rect.contains(p)).count() as f64;
            let est = rfde.estimate_count(&rect);
            // Loose bound: RFDE is an estimator, but on uniform data it must
            // not be wildly off (within 5% of the dataset size).
            assert!((est - exact).abs() <= 200.0, "est {est} vs exact {exact}");
        }
    }
}
