//! A single randomized count k-d tree, the building block of the RFDE forest.

use rand::rngs::StdRng;
use rand::Rng;
use wazi_geom::{Point, Rect};

/// Axis of a k-d split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Split on the x coordinate.
    X,
    /// Split on the y coordinate.
    Y,
}

impl Axis {
    #[inline]
    fn coord(&self, p: &Point) -> f64 {
        match self {
            Axis::X => p.x,
            Axis::Y => p.y,
        }
    }

    #[inline]
    fn other(&self) -> Axis {
        match self {
            Axis::X => Axis::Y,
            Axis::Y => Axis::X,
        }
    }
}

/// A node of the count k-d tree stored in an index-based arena.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    /// Tight bounding box of the points below this node.
    pub region: Rect,
    /// Total weight (cardinality for unweighted data) of points below this
    /// node.
    pub weight: f64,
    /// Split information; `None` for leaves.
    pub split: Option<Split>,
}

#[derive(Debug, Clone)]
pub(crate) struct Split {
    pub axis: Axis,
    pub value: f64,
    pub left: u32,
    pub right: u32,
}

/// A k-d tree whose nodes store the (weighted) number of data points in their
/// region. Density estimation is a tree traversal that sums node weights,
/// pro-rating partially overlapped leaves by area (uniformity assumption
/// within a leaf bounding box), exactly the "collect cardinality information
/// from nodes overlapping the density estimation query" procedure the paper
/// describes for its RFDE models.
#[derive(Debug, Clone)]
pub struct CountKdTree {
    nodes: Vec<Node>,
    root: u32,
    total_weight: f64,
    leaf_count: usize,
}

/// Construction parameters for one tree.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TreeParams {
    pub leaf_weight: f64,
    pub max_depth: usize,
}

impl CountKdTree {
    /// Builds a tree over `(point, weight)` pairs.
    ///
    /// `rng` drives the randomized choice of split dimension at every node,
    /// which is what makes a *forest* of such trees a variance-reducing
    /// estimator (Wen & Hang, 2022).
    pub(crate) fn fit(data: &mut [(Point, f64)], params: TreeParams, rng: &mut StdRng) -> Self {
        let mut nodes = Vec::new();
        let total_weight: f64 = data.iter().map(|(_, w)| w).sum();
        let mut leaf_count = 0usize;
        let root = if data.is_empty() {
            nodes.push(Node {
                region: Rect::EMPTY,
                weight: 0.0,
                split: None,
            });
            leaf_count = 1;
            0
        } else {
            build_node(data, params, rng, 0, &mut nodes, &mut leaf_count)
        };
        Self {
            nodes,
            root,
            total_weight,
            leaf_count,
        }
    }

    /// Total weight indexed by the tree.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.leaf_count
    }

    /// Number of nodes (internal + leaf).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Estimated weight of points falling inside `query`.
    pub fn estimate(&self, query: &Rect) -> f64 {
        if self.nodes.is_empty() || query.is_empty() {
            return 0.0;
        }
        self.estimate_node(self.root, query)
    }

    fn estimate_node(&self, idx: u32, query: &Rect) -> f64 {
        let node = &self.nodes[idx as usize];
        if node.weight == 0.0 || !query.overlaps(&node.region) {
            return 0.0;
        }
        if query.contains_rect(&node.region) {
            return node.weight;
        }
        match &node.split {
            Some(split) => {
                // Prune by the split plane before touching the children:
                // left holds coordinates `<= value`, right holds `> value`,
                // so a query strictly on one side never needs the other
                // child's node at all.
                let (q_lo, q_hi) = match split.axis {
                    Axis::X => (query.lo.x, query.hi.x),
                    Axis::Y => (query.lo.y, query.hi.y),
                };
                let mut sum = 0.0;
                if q_lo <= split.value {
                    sum += self.estimate_node(split.left, query);
                }
                if q_hi > split.value {
                    sum += self.estimate_node(split.right, query);
                }
                sum
            }
            None => {
                // Partially overlapped leaf: assume uniform density within
                // the leaf bounding box. The overlap fraction is computed per
                // axis so that degenerate boxes (points on a segment or a
                // single spot) are pro-rated along their non-degenerate axis
                // instead of being counted fully.
                let Some(overlap) = node.region.intersection(query) else {
                    return 0.0;
                };
                let frac_x = axis_fraction(node.region.width(), overlap.width());
                let frac_y = axis_fraction(node.region.height(), overlap.height());
                node.weight * frac_x * frac_y
            }
        }
    }

    /// Approximate in-memory size in bytes (used for index-size accounting of
    /// learned components).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.nodes.len() * std::mem::size_of::<Node>()
    }
}

/// Fraction of a leaf's extent along one axis covered by the query overlap.
/// A zero extent means every point shares that coordinate, so the overlap
/// (already known to be non-empty) covers all of them on that axis.
#[inline]
fn axis_fraction(extent: f64, overlap: f64) -> f64 {
    if extent > 0.0 {
        (overlap / extent).clamp(0.0, 1.0)
    } else {
        1.0
    }
}

fn build_node(
    data: &mut [(Point, f64)],
    params: TreeParams,
    rng: &mut StdRng,
    depth: usize,
    nodes: &mut Vec<Node>,
    leaf_count: &mut usize,
) -> u32 {
    let weight: f64 = data.iter().map(|(_, w)| w).sum();
    let region = {
        let mut acc = Rect::EMPTY;
        for (p, _) in data.iter() {
            acc.expand(p);
        }
        acc
    };
    let idx = nodes.len() as u32;
    nodes.push(Node {
        region,
        weight,
        split: None,
    });

    let should_split = weight > params.leaf_weight && depth < params.max_depth && data.len() > 1;
    if !should_split {
        *leaf_count += 1;
        return idx;
    }

    // Randomized split dimension; the split value is the midpoint between the
    // two points adjacent to the median along that dimension, which keeps the
    // two halves non-empty whenever the coordinate is not constant.
    let axis = if rng.gen_bool(0.5) { Axis::X } else { Axis::Y };
    let split = choose_split(data, axis).or_else(|| choose_split(data, axis.other()));
    let Some((axis, split_value)) = split else {
        // All points identical on both axes: cannot split further.
        *leaf_count += 1;
        return idx;
    };

    let partition = partition_by(data, axis, split_value);
    let (left_data, right_data) = data.split_at_mut(partition);
    debug_assert!(!left_data.is_empty() && !right_data.is_empty());

    let left = build_node(left_data, params, rng, depth + 1, nodes, leaf_count);
    let right = build_node(right_data, params, rng, depth + 1, nodes, leaf_count);
    nodes[idx as usize].split = Some(Split {
        axis,
        value: split_value,
        left,
        right,
    });
    idx
}

/// Chooses a median-based split value along `axis`, or `None` when every
/// point shares the same coordinate on that axis.
fn choose_split(data: &mut [(Point, f64)], axis: Axis) -> Option<(Axis, f64)> {
    data.sort_unstable_by(|a, b| axis.coord(&a.0).total_cmp(&axis.coord(&b.0)));
    let lo = axis.coord(&data[0].0);
    let hi = axis.coord(&data[data.len() - 1].0);
    if lo == hi {
        return None;
    }
    let mid = data.len() / 2;
    let mut value = 0.5 * (axis.coord(&data[mid - 1].0) + axis.coord(&data[mid].0));
    if value <= lo || value >= hi {
        // Heavily duplicated median coordinate; fall back to the midpoint of
        // the coordinate range so both halves stay non-empty.
        value = 0.5 * (lo + hi);
    }
    Some((axis, value))
}

/// Partitions `data` (already sorted along `axis`) so that points with
/// coordinate `<= value` come first, returning the boundary index.
fn partition_by(data: &mut [(Point, f64)], axis: Axis, value: f64) -> usize {
    data.sort_unstable_by(|a, b| axis.coord(&a.0).total_cmp(&axis.coord(&b.0)));
    data.iter()
        .position(|(p, _)| axis.coord(p) > value)
        .unwrap_or(data.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn grid_points(n: usize) -> Vec<(Point, f64)> {
        // n x n grid of unit-weight points strictly inside the unit square.
        let mut pts = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                let x = (i as f64 + 0.5) / n as f64;
                let y = (j as f64 + 0.5) / n as f64;
                pts.push((Point::new(x, y), 1.0));
            }
        }
        pts
    }

    fn fit(data: &mut [(Point, f64)], leaf_weight: f64) -> CountKdTree {
        let mut rng = StdRng::seed_from_u64(7);
        CountKdTree::fit(
            data,
            TreeParams {
                leaf_weight,
                max_depth: 32,
            },
            &mut rng,
        )
    }

    #[test]
    fn full_space_query_returns_total_weight() {
        let mut data = grid_points(20);
        let tree = fit(&mut data, 8.0);
        assert_eq!(tree.total_weight(), 400.0);
        assert!((tree.estimate(&Rect::UNIT) - 400.0).abs() < 1e-9);
    }

    #[test]
    fn half_space_query_is_roughly_half() {
        let mut data = grid_points(32);
        let tree = fit(&mut data, 16.0);
        let half = Rect::from_coords(0.0, 0.0, 0.5, 1.0);
        let estimate = tree.estimate(&half);
        let exact = 512.0;
        assert!(
            (estimate - exact).abs() / exact < 0.10,
            "estimate {estimate} too far from {exact}"
        );
    }

    #[test]
    fn empty_input_and_disjoint_queries_estimate_zero() {
        let tree = fit(&mut [], 4.0);
        assert_eq!(tree.estimate(&Rect::UNIT), 0.0);

        let mut data = grid_points(8);
        let tree = fit(&mut data, 4.0);
        assert_eq!(tree.estimate(&Rect::EMPTY), 0.0);
        assert_eq!(tree.estimate(&Rect::from_coords(2.0, 2.0, 3.0, 3.0)), 0.0);
    }

    #[test]
    fn weighted_points_are_summed_exactly_for_separating_queries() {
        let mut data = vec![(Point::new(0.25, 0.25), 3.0), (Point::new(0.75, 0.75), 7.0)];
        let tree = fit(&mut data, 1.0);
        assert_eq!(tree.total_weight(), 10.0);
        let left = tree.estimate(&Rect::from_coords(0.0, 0.0, 0.5, 0.5));
        let right = tree.estimate(&Rect::from_coords(0.5, 0.5, 1.0, 1.0));
        assert!((left - 3.0).abs() < 1e-9, "left estimate {left}");
        assert!((right - 7.0).abs() < 1e-9, "right estimate {right}");
    }

    #[test]
    fn duplicate_points_do_not_recurse_forever() {
        let mut data = vec![(Point::new(0.5, 0.5), 1.0); 100];
        let tree = fit(&mut data, 4.0);
        assert_eq!(tree.total_weight(), 100.0);
        assert!(
            tree.node_count() < 50,
            "degenerate data must stop splitting"
        );
        let q = Rect::from_coords(0.4, 0.4, 0.6, 0.6);
        assert_eq!(tree.estimate(&q), 100.0);
    }

    #[test]
    fn skewed_duplicates_on_one_axis_still_split() {
        // All x equal; only the y axis can separate the data.
        let mut data: Vec<(Point, f64)> = (0..64)
            .map(|i| (Point::new(0.5, i as f64 / 64.0), 1.0))
            .collect();
        let tree = fit(&mut data, 4.0);
        assert!(tree.leaf_count() > 4);
        let lower = tree.estimate(&Rect::from_coords(0.0, 0.0, 1.0, 0.25));
        assert!((lower - 16.0).abs() <= 2.0, "lower estimate {lower}");
    }

    #[test]
    fn leaf_count_and_size_are_consistent() {
        let mut data = grid_points(16);
        let tree = fit(&mut data, 8.0);
        assert!(tree.leaf_count() > 1);
        assert_eq!(tree.node_count(), 2 * tree.leaf_count() - 1);
        assert!(tree.size_bytes() > tree.node_count());
    }
}
