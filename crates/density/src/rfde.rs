//! Random Forest Density Estimation (RFDE) over two-dimensional points.

use crate::tree::{CountKdTree, TreeParams};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use wazi_geom::{Point, Rect};

/// Configuration of an RFDE forest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RfdeConfig {
    /// Number of randomized trees in the forest.
    pub trees: usize,
    /// Target (weighted) number of points per leaf.
    pub leaf_weight: f64,
    /// Maximum tree depth (a safety bound for adversarial data).
    pub max_depth: usize,
    /// Fraction of the data sampled (without replacement) for each tree.
    /// `1.0` trains every tree on the full dataset.
    pub sample_fraction: f64,
    /// Seed for the deterministic pseudo-random generator.
    pub seed: u64,
}

impl Default for RfdeConfig {
    fn default() -> Self {
        Self {
            trees: 4,
            leaf_weight: 64.0,
            max_depth: 40,
            sample_fraction: 1.0,
            seed: 0x5EED_DA7A,
        }
    }
}

impl RfdeConfig {
    /// A smaller, faster configuration used where estimation accuracy is less
    /// critical (e.g. the weighted estimator inside CUR construction).
    pub fn fast() -> Self {
        Self {
            trees: 2,
            leaf_weight: 256.0,
            sample_fraction: 0.5,
            ..Self::default()
        }
    }
}

/// A Random Forest Density Estimation model: a forest of randomized count
/// k-d trees whose per-region cardinalities are averaged to estimate how many
/// (weighted) points fall inside an arbitrary query rectangle.
///
/// WaZI uses two such models during construction (Section 4.3): one over the
/// data points to estimate the `n_X` terms of the cost function, and the CUR
/// baseline uses a weighted variant where each point is weighted by the
/// number of distinct queries fetching it.
#[derive(Debug, Clone)]
pub struct Rfde {
    trees: Vec<CountKdTree>,
    total_weight: f64,
    scale: f64,
    config: RfdeConfig,
}

impl Rfde {
    /// Fits the forest on unweighted points (every point has weight one).
    pub fn fit(points: &[Point], config: RfdeConfig) -> Self {
        let weighted: Vec<(Point, f64)> = points.iter().map(|p| (*p, 1.0)).collect();
        Self::fit_weighted(&weighted, config)
    }

    /// Fits the forest on weighted points.
    pub fn fit_weighted(points: &[(Point, f64)], config: RfdeConfig) -> Self {
        assert!(config.trees > 0, "RFDE needs at least one tree");
        assert!(
            config.sample_fraction > 0.0 && config.sample_fraction <= 1.0,
            "sample fraction must be in (0, 1]"
        );
        let total_weight: f64 = points.iter().map(|(_, w)| w).sum();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let params = TreeParams {
            leaf_weight: config.leaf_weight,
            max_depth: config.max_depth,
        };

        let sample_len = if config.sample_fraction >= 1.0 {
            points.len()
        } else {
            ((points.len() as f64) * config.sample_fraction).ceil() as usize
        }
        .max(1.min(points.len()));

        let mut trees = Vec::with_capacity(config.trees);
        let mut scratch: Vec<(Point, f64)> = points.to_vec();
        for _ in 0..config.trees {
            if sample_len < points.len() {
                scratch.copy_from_slice(points);
                scratch.partial_shuffle(&mut rng, sample_len);
                let mut sample: Vec<(Point, f64)> = scratch[..sample_len].to_vec();
                trees.push(CountKdTree::fit(&mut sample, params, &mut rng));
            } else {
                trees.push(CountKdTree::fit(&mut scratch, params, &mut rng));
            }
        }

        // Per-tree estimates cover only the sampled weight; rescale so that a
        // full-space query returns the total weight of the original data.
        let sampled_weight: f64 =
            trees.iter().map(|t| t.total_weight()).sum::<f64>() / trees.len() as f64;
        let scale = if sampled_weight > 0.0 {
            total_weight / sampled_weight
        } else {
            1.0
        };

        Self {
            trees,
            total_weight,
            scale,
            config,
        }
    }

    /// Estimated (weighted) number of points inside `query`.
    pub fn estimate_count(&self, query: &Rect) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        let mean: f64 =
            self.trees.iter().map(|t| t.estimate(query)).sum::<f64>() / self.trees.len() as f64;
        mean * self.scale
    }

    /// Estimated fraction of the total weight inside `query` (in `[0, 1]`).
    pub fn estimate_fraction(&self, query: &Rect) -> f64 {
        if self.total_weight <= 0.0 {
            return 0.0;
        }
        (self.estimate_count(query) / self.total_weight).clamp(0.0, 1.0)
    }

    /// Total weight of the fitted data.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// The configuration used to fit this forest.
    pub fn config(&self) -> &RfdeConfig {
        &self.config
    }

    /// Number of trees in the forest.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Approximate in-memory size in bytes.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.trees.iter().map(|t| t.size_bytes()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn uniform_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    #[test]
    fn full_space_estimate_matches_total() {
        let points = uniform_points(5_000, 1);
        let rfde = Rfde::fit(&points, RfdeConfig::default());
        let est = rfde.estimate_count(&Rect::UNIT);
        assert!((est - 5_000.0).abs() < 1.0, "estimate {est}");
        assert!((rfde.estimate_fraction(&Rect::UNIT) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn uniform_data_estimates_track_area() {
        let points = uniform_points(20_000, 2);
        let rfde = Rfde::fit(&points, RfdeConfig::default());
        for (rect, frac) in [
            (Rect::from_coords(0.0, 0.0, 0.5, 0.5), 0.25),
            (Rect::from_coords(0.25, 0.25, 0.75, 0.75), 0.25),
            (Rect::from_coords(0.0, 0.0, 0.1, 1.0), 0.1),
        ] {
            let est = rfde.estimate_fraction(&rect);
            assert!(
                (est - frac).abs() < 0.03,
                "estimate {est} for area fraction {frac}"
            );
        }
    }

    #[test]
    fn clustered_data_is_not_smeared_uniformly() {
        // 90% of the mass in a small corner cluster.
        let mut rng = StdRng::seed_from_u64(3);
        let mut points = Vec::new();
        for _ in 0..9_000 {
            points.push(Point::new(rng.gen::<f64>() * 0.1, rng.gen::<f64>() * 0.1));
        }
        for _ in 0..1_000 {
            points.push(Point::new(rng.gen::<f64>(), rng.gen::<f64>()));
        }
        let rfde = Rfde::fit(&points, RfdeConfig::default());
        let cluster = rfde.estimate_fraction(&Rect::from_coords(0.0, 0.0, 0.1, 0.1));
        assert!(
            cluster > 0.75,
            "cluster fraction {cluster} should be close to 0.9"
        );
        let far = rfde.estimate_fraction(&Rect::from_coords(0.8, 0.8, 1.0, 1.0));
        assert!(far < 0.05, "far fraction {far} should be small");
    }

    #[test]
    fn weighted_estimates_respect_weights() {
        let points = vec![(Point::new(0.2, 0.2), 10.0), (Point::new(0.8, 0.8), 90.0)];
        let rfde = Rfde::fit_weighted(
            &points,
            RfdeConfig {
                trees: 3,
                leaf_weight: 1.0,
                ..Default::default()
            },
        );
        assert_eq!(rfde.total_weight(), 100.0);
        let hot = rfde.estimate_count(&Rect::from_coords(0.7, 0.7, 0.9, 0.9));
        assert!((hot - 90.0).abs() < 1e-6, "hot estimate {hot}");
    }

    #[test]
    fn subsampled_forest_rescales_to_total() {
        let points = uniform_points(10_000, 4);
        let config = RfdeConfig {
            sample_fraction: 0.25,
            trees: 6,
            ..Default::default()
        };
        let rfde = Rfde::fit(&points, config);
        let est = rfde.estimate_count(&Rect::UNIT);
        assert!(
            (est - 10_000.0).abs() / 10_000.0 < 0.01,
            "rescaled estimate {est}"
        );
        let half = rfde.estimate_count(&Rect::from_coords(0.0, 0.0, 1.0, 0.5));
        assert!(
            (half - 5_000.0).abs() / 5_000.0 < 0.1,
            "half estimate {half}"
        );
    }

    #[test]
    fn empty_dataset_estimates_zero() {
        let rfde = Rfde::fit(&[], RfdeConfig::default());
        assert_eq!(rfde.estimate_count(&Rect::UNIT), 0.0);
        assert_eq!(rfde.estimate_fraction(&Rect::UNIT), 0.0);
    }

    #[test]
    fn size_grows_with_tree_count() {
        let points = uniform_points(2_000, 5);
        let small = Rfde::fit(
            &points,
            RfdeConfig {
                trees: 1,
                ..Default::default()
            },
        );
        let large = Rfde::fit(
            &points,
            RfdeConfig {
                trees: 8,
                ..Default::default()
            },
        );
        assert!(large.size_bytes() > small.size_bytes());
        assert_eq!(small.tree_count(), 1);
        assert_eq!(large.tree_count(), 8);
    }
}
