//! # wazi-density
//!
//! Random Forest Density Estimation (RFDE, Wen & Hang 2022) as used by the
//! WaZI index construction (Section 4.3 of the paper): a forest of k-d trees
//! with randomized split dimensions whose nodes store the cardinality of the
//! points in their region. Estimating the number of points inside a query
//! rectangle is a tree traversal collecting cardinalities from overlapping
//! nodes.
//!
//! Two flavours are provided through one type:
//!
//! * [`Rfde::fit`] — the plain estimator over data points, used by WaZI to
//!   evaluate the `n_X` terms of the retrieval-cost function;
//! * [`Rfde::fit_weighted`] — the weighted estimator used by the CUR
//!   baseline, where each point is weighted by the number of distinct
//!   queries fetching it (Section 6.1).
//!
//! Estimation is construction-time only: query execution (including the
//! engine's fused batch kernels) never consults the estimator, so its cost
//! is charged to build time alone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod rfde;
mod tree;

pub use rfde::{Rfde, RfdeConfig};
pub use tree::CountKdTree;
