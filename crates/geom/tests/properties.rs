//! Randomized property tests for the geometric primitives.
//!
//! Each property is checked over a deterministic stream of random inputs
//! (seeded, so failures are reproducible by seed).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wazi_geom::zorder::{bigmin, morton_decode, morton_encode, ZOrderMapper};
use wazi_geom::{CellOrdering, Point, Quadrant, QueryCase, Rect};

const CASES: usize = 512;

fn rand_point(rng: &mut StdRng) -> Point {
    Point::new(rng.gen::<f64>(), rng.gen::<f64>())
}

fn rand_rect(rng: &mut StdRng) -> Rect {
    Rect::from_corners(rand_point(rng), rand_point(rng))
}

#[test]
fn dominance_is_antisymmetric() {
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..CASES {
        let (a, b) = (rand_point(&mut rng), rand_point(&mut rng));
        assert!(!(a.dominated_by(&b) && b.dominated_by(&a)), "{a} vs {b}");
    }
}

#[test]
fn rect_contains_its_corners_and_center() {
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..CASES {
        let r = rand_rect(&mut rng);
        assert!(r.contains(&r.bl()), "{r:?}");
        assert!(r.contains(&r.tr()), "{r:?}");
        assert!(r.contains(&r.center()), "{r:?}");
    }
}

#[test]
fn intersection_is_contained_in_both() {
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..CASES {
        let (a, b) = (rand_rect(&mut rng), rand_rect(&mut rng));
        if let Some(i) = a.intersection(&b) {
            assert!(a.contains_rect(&i) || i.area() == 0.0);
            assert!(b.contains_rect(&i) || i.area() == 0.0);
            assert!(i.area() <= a.area() + 1e-12);
            assert!(i.area() <= b.area() + 1e-12);
        } else {
            assert!(!a.overlaps(&b));
        }
    }
}

#[test]
fn union_contains_both() {
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..CASES {
        let (a, b) = (rand_rect(&mut rng), rand_rect(&mut rng));
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
    }
}

#[test]
fn quadrant_regions_partition_area() {
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..CASES {
        let split = rand_point(&mut rng);
        let cell = Rect::UNIT;
        let total: f64 = Quadrant::ALL
            .iter()
            .map(|q| q.region(&cell, &split).area())
            .sum();
        assert!((total - cell.area()).abs() < 1e-9, "split {split}");
    }
}

#[test]
fn quadrant_of_point_lies_in_its_region() {
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..CASES {
        let (p, split) = (rand_point(&mut rng), rand_point(&mut rng));
        let q = Quadrant::of(&p, &split);
        let region = q.region(&Rect::UNIT, &split);
        assert!(region.contains(&p), "{p} not in {q:?} region for {split}");
    }
}

#[test]
fn orderings_are_permutations() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..CASES {
        let (p, split) = (rand_point(&mut rng), rand_point(&mut rng));
        for ordering in CellOrdering::ALL {
            let child = ordering.child_of(&p, &split);
            assert!(child < 4);
            let curve = ordering.curve();
            assert_eq!(curve[child], Quadrant::of(&p, &split));
        }
    }
}

#[test]
fn query_case_overlapped_matches_geometry() {
    let mut rng = StdRng::seed_from_u64(8);
    for _ in 0..CASES {
        let (r, split) = (rand_rect(&mut rng), rand_point(&mut rng));
        let case = QueryCase::classify(&r, &split);
        let overlapped = case.overlapped();
        // Every quadrant reported as overlapped must geometrically overlap
        // the query, and every quadrant with interior overlap must be
        // reported.
        for q in Quadrant::ALL {
            let region = q.region(&Rect::UNIT, &split);
            let reported = overlapped.contains(&q);
            if reported {
                assert!(region.overlaps(&r) || region.area() == 0.0);
            }
            if let Some(i) = region.intersection(&r) {
                if i.area() > 0.0 {
                    assert!(reported, "quadrant {q:?} overlaps but was not reported");
                }
            }
        }
    }
}

#[test]
fn morton_round_trip() {
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..CASES {
        let x = rng.gen_range(0u32..=0x7FFF_FFFF);
        let y = rng.gen_range(0u32..=0x7FFF_FFFF);
        assert_eq!(morton_decode(morton_encode(x, y)), (x, y));
    }
}

#[test]
fn morton_is_monotone_under_dominance() {
    let mut rng = StdRng::seed_from_u64(10);
    for _ in 0..CASES {
        // A dominated grid cell always receives a smaller or equal code.
        let x0 = rng.gen_range(0u32..1000);
        let y0 = rng.gen_range(0u32..1000);
        let dx = rng.gen_range(0u32..1000);
        let dy = rng.gen_range(0u32..1000);
        let a = morton_encode(x0, y0);
        let b = morton_encode(x0 + dx, y0 + dy);
        assert!(a <= b || (dx == 0 && dy == 0));
    }
}

#[test]
fn bigmin_result_is_inside_box_and_after_current() {
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..CASES {
        let qx0 = rng.gen_range(0u32..32);
        let qy0 = rng.gen_range(0u32..32);
        let (qx1, qy1) = (qx0 + rng.gen_range(0u32..32), qy0 + rng.gen_range(0u32..32));
        let current = morton_encode(rng.gen_range(0u32..64), rng.gen_range(0u32..64));
        let min_code = morton_encode(qx0, qy0);
        let max_code = morton_encode(qx1, qy1);
        if let Some(next) = bigmin(current, min_code, max_code) {
            let (nx, ny) = morton_decode(next);
            assert!(next > current);
            assert!(nx >= qx0 && nx <= qx1, "x out of box");
            assert!(ny >= qy0 && ny <= qy1, "y out of box");
        }
    }
}

#[test]
fn query_box_area_matches_selectivity() {
    let mut rng = StdRng::seed_from_u64(12);
    for _ in 0..CASES {
        let center = rand_point(&mut rng);
        let frac = rng.gen_range(0.0001f64..0.05);
        let aspect = rng.gen_range(0.25f64..4.0);
        let q = Rect::query_box(&Rect::UNIT, center, frac, aspect);
        assert!(Rect::UNIT.contains_rect(&q));
        assert!((q.area() - frac).abs() < 1e-9);
    }
}

#[test]
fn zorder_mapper_codes_are_monotone() {
    let mut rng = StdRng::seed_from_u64(13);
    let mapper = ZOrderMapper::new(Rect::UNIT, 20);
    for _ in 0..CASES {
        let (a, b) = (rand_point(&mut rng), rand_point(&mut rng));
        if a.weakly_dominated_by(&b) {
            assert!(mapper.code(&a) <= mapper.code(&b));
        }
    }
}
