//! Property-based tests for the geometric primitives.

use proptest::prelude::*;
use wazi_geom::zorder::{bigmin, morton_decode, morton_encode, ZOrderMapper};
use wazi_geom::{CellOrdering, Point, Quadrant, QueryCase, Rect};

fn arb_point() -> impl Strategy<Value = Point> {
    (0.0f64..1.0, 0.0f64..1.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Rect::from_corners(a, b))
}

proptest! {
    #[test]
    fn dominance_is_antisymmetric(a in arb_point(), b in arb_point()) {
        prop_assert!(!(a.dominated_by(&b) && b.dominated_by(&a)));
    }

    #[test]
    fn rect_contains_its_corners_and_center(r in arb_rect()) {
        prop_assert!(r.contains(&r.bl()));
        prop_assert!(r.contains(&r.tr()));
        prop_assert!(r.contains(&r.center()));
    }

    #[test]
    fn intersection_is_contained_in_both(a in arb_rect(), b in arb_rect()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i) || i.area() == 0.0);
            prop_assert!(b.contains_rect(&i) || i.area() == 0.0);
            prop_assert!(i.area() <= a.area() + 1e-12);
            prop_assert!(i.area() <= b.area() + 1e-12);
        } else {
            prop_assert!(!a.overlaps(&b));
        }
    }

    #[test]
    fn union_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn quadrant_regions_partition_area(split in arb_point()) {
        let cell = Rect::UNIT;
        let total: f64 = Quadrant::ALL
            .iter()
            .map(|q| q.region(&cell, &split).area())
            .sum();
        prop_assert!((total - cell.area()).abs() < 1e-9);
    }

    #[test]
    fn quadrant_of_point_lies_in_its_region(p in arb_point(), split in arb_point()) {
        let q = Quadrant::of(&p, &split);
        let region = q.region(&Rect::UNIT, &split);
        prop_assert!(region.contains(&p));
    }

    #[test]
    fn orderings_are_permutations(p in arb_point(), split in arb_point()) {
        for ordering in CellOrdering::ALL {
            let child = ordering.child_of(&p, &split);
            prop_assert!(child < 4);
            let curve = ordering.curve();
            prop_assert_eq!(curve[child], Quadrant::of(&p, &split));
        }
    }

    #[test]
    fn query_case_overlapped_matches_geometry(r in arb_rect(), split in arb_point()) {
        let case = QueryCase::classify(&r, &split);
        let overlapped = case.overlapped();
        // Every quadrant reported as overlapped must geometrically overlap the
        // query, and every quadrant with interior overlap must be reported.
        for q in Quadrant::ALL {
            let region = q.region(&Rect::UNIT, &split);
            let reported = overlapped.contains(&q);
            if reported {
                prop_assert!(region.overlaps(&r) || region.area() == 0.0);
            }
            if let Some(i) = region.intersection(&r) {
                if i.area() > 0.0 {
                    prop_assert!(reported, "quadrant {:?} overlaps but was not reported", q);
                }
            }
        }
    }

    #[test]
    fn morton_round_trip(x in 0u32..=0x7FFF_FFFF, y in 0u32..=0x7FFF_FFFF) {
        prop_assert_eq!(morton_decode(morton_encode(x, y)), (x, y));
    }

    #[test]
    fn morton_is_monotone_under_dominance(
        x0 in 0u32..1000, y0 in 0u32..1000, dx in 0u32..1000, dy in 0u32..1000
    ) {
        // A dominated grid cell always receives a smaller or equal code.
        let a = morton_encode(x0, y0);
        let b = morton_encode(x0 + dx, y0 + dy);
        prop_assert!(a <= b || (dx == 0 && dy == 0));
    }

    #[test]
    fn bigmin_result_is_inside_box_and_after_current(
        qx0 in 0u32..32, qy0 in 0u32..32, w in 0u32..32, h in 0u32..32, cx in 0u32..64, cy in 0u32..64
    ) {
        let (qx1, qy1) = (qx0 + w, qy0 + h);
        let min_code = morton_encode(qx0, qy0);
        let max_code = morton_encode(qx1, qy1);
        let current = morton_encode(cx, cy);
        if let Some(next) = bigmin(current, min_code, max_code) {
            let (nx, ny) = morton_decode(next);
            prop_assert!(next > current);
            prop_assert!(nx >= qx0 && nx <= qx1, "x out of box");
            prop_assert!(ny >= qy0 && ny <= qy1, "y out of box");
        }
    }

    #[test]
    fn query_box_area_matches_selectivity(center in arb_point(), frac in 0.0001f64..0.05, aspect in 0.25f64..4.0) {
        let q = Rect::query_box(&Rect::UNIT, center, frac, aspect);
        prop_assert!(Rect::UNIT.contains_rect(&q));
        prop_assert!((q.area() - frac).abs() < 1e-9);
    }

    #[test]
    fn zorder_mapper_codes_are_monotone(a in arb_point(), b in arb_point()) {
        let mapper = ZOrderMapper::new(Rect::UNIT, 20);
        if a.weakly_dominated_by(&b) {
            prop_assert!(mapper.code(&a) <= mapper.code(&b));
        }
    }
}
