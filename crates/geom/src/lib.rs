//! # wazi-geom
//!
//! Spatial primitives shared by every crate of the WaZI reproduction:
//!
//! * [`Point`] — two-dimensional points with the dominance relation used to
//!   state Z-order monotonicity;
//! * [`Rect`] — axis-aligned rectangles used as range queries, cell regions
//!   and page bounding boxes;
//! * [`Quadrant`], [`CellOrdering`], [`QueryCase`] — the split-point
//!   geometry behind Algorithm 1 and the cost formulas of the paper;
//! * [`zorder`] — classic rank-space Morton arithmetic (including BIGMIN,
//!   which both the sequential scan and the query engine's shared BIGMIN
//!   batch sweep use to jump over irrelevant code runs) used by the
//!   rank-space baselines of Figure 4.
//!
//! The crate is dependency-free and contains no index logic of its own.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod point;
mod quadrant;
mod rect;
pub mod zorder;

pub use point::Point;
pub use quadrant::{CellOrdering, Quadrant, QueryCase};
pub use rect::Rect;
