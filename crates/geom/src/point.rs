//! Two-dimensional points and dominance relations.
//!
//! The WaZI paper operates on two-dimensional spatial data (points of
//! interest extracted from OpenStreetMap). All indexes in this workspace
//! share this point type. Coordinates are `f64` in the original data space —
//! WaZI explicitly avoids the rank-space projection used by ZM/RSMI.

/// A point in the two-dimensional data space.
///
/// Ordering helpers ([`Point::dominates`], [`Point::dominated_by`]) implement
/// the dominance relation used by the paper to state the monotonicity
/// property of Z-orderings: a point `a` is dominated by `b` when
/// `a.x <= b.x && a.y <= b.y` and at least one inequality is strict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Coordinate along the first axis.
    pub x: f64,
    /// Coordinate along the second axis.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Returns `true` when `self` dominates `other`, i.e. `self` is at least
    /// as large on both axes and strictly larger on at least one.
    #[inline]
    pub fn dominates(&self, other: &Point) -> bool {
        other.dominated_by(self)
    }

    /// Returns `true` when `self` is dominated by `other`.
    ///
    /// This is the relation used in Section 3 of the paper: if a point `a`
    /// in page `X` is dominated by point `b` in page `Y != X`, then `X`
    /// appears earlier in the leaf list than `Y` for any monotone ordering.
    #[inline]
    pub fn dominated_by(&self, other: &Point) -> bool {
        self.x <= other.x && self.y <= other.y && (self.x < other.x || self.y < other.y)
    }

    /// Returns `true` when both coordinates are less than or equal to
    /// `other`'s (weak dominance, allows equality on both axes).
    #[inline]
    pub fn weakly_dominated_by(&self, other: &Point) -> bool {
        self.x <= other.x && self.y <= other.y
    }

    /// Component-wise minimum of two points.
    #[inline]
    pub fn min(&self, other: &Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum of two points.
    #[inline]
    pub fn max(&self, other: &Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root when only
    /// comparisons are needed, e.g. in kNN search).
    #[inline]
    pub fn distance_squared(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Returns `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Lexicographic comparison `(x, then y)`, used as a deterministic
    /// total order for tie-breaking in sorting-based builders (STR, medians).
    #[inline]
    pub fn lex_cmp(&self, other: &Point) -> std::cmp::Ordering {
        self.x
            .total_cmp(&other.x)
            .then_with(|| self.y.total_cmp(&other.y))
    }
}

impl From<(f64, f64)> for Point {
    fn from(value: (f64, f64)) -> Self {
        Point::new(value.0, value.1)
    }
}

impl From<Point> for (f64, f64) {
    fn from(value: Point) -> Self {
        (value.x, value.y)
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_is_strict_somewhere() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(2.0, 1.0);
        assert!(a.dominated_by(&b));
        assert!(b.dominates(&a));
        assert!(!a.dominated_by(&a), "a point never dominates itself");
        assert!(a.weakly_dominated_by(&a));
    }

    #[test]
    fn dominance_requires_both_axes() {
        let a = Point::new(1.0, 5.0);
        let b = Point::new(2.0, 1.0);
        assert!(!a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Point::new(1.0, 5.0);
        let b = Point::new(2.0, 1.0);
        assert_eq!(a.min(&b), Point::new(1.0, 1.0));
        assert_eq!(a.max(&b), Point::new(2.0, 5.0));
    }

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance_squared(&b), 25.0);
        assert_eq!(a.distance(&b), 5.0);
    }

    #[test]
    fn conversions_round_trip() {
        let p: Point = (1.5, -2.5).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.5, -2.5));
        assert_eq!(format!("{p}"), "(1.5, -2.5)");
    }

    #[test]
    fn lex_cmp_orders_by_x_then_y() {
        let a = Point::new(1.0, 9.0);
        let b = Point::new(2.0, 0.0);
        let c = Point::new(1.0, 10.0);
        assert_eq!(a.lex_cmp(&b), std::cmp::Ordering::Less);
        assert_eq!(a.lex_cmp(&c), std::cmp::Ordering::Less);
        assert_eq!(a.lex_cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn finite_detection() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }
}
