//! Axis-aligned rectangles: range queries, cell regions and bounding boxes.

use crate::point::Point;

/// An axis-aligned rectangle defined by its bottom-left (`lo`) and top-right
/// (`hi`) corners, both inclusive.
///
/// Rectangles are used for three purposes throughout the workspace:
///
/// * range queries `R`, defined by `BL(R)` and `TR(R)` as in Section 3 of the
///   paper;
/// * the region spanned by an index cell (a node of the quaternary tree);
/// * bounding boxes (`bbs`) of leaf pages checked during the scanning phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Bottom-left corner (minimum on both axes).
    pub lo: Point,
    /// Top-right corner (maximum on both axes).
    pub hi: Point,
}

impl Rect {
    /// Creates a rectangle from its bottom-left and top-right corners.
    ///
    /// # Panics
    /// Panics in debug builds when the corners are not ordered.
    #[inline]
    pub fn new(lo: Point, hi: Point) -> Self {
        debug_assert!(
            lo.x <= hi.x && lo.y <= hi.y,
            "rectangle corners must be ordered: lo={lo:?} hi={hi:?}"
        );
        Self { lo, hi }
    }

    /// Creates a rectangle from raw corner coordinates.
    #[inline]
    pub fn from_coords(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Self::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    /// Creates a rectangle from two arbitrary corner points, normalising the
    /// corner order.
    #[inline]
    pub fn from_corners(a: Point, b: Point) -> Self {
        Self::new(a.min(&b), a.max(&b))
    }

    /// The unit square `[0, 1] x [0, 1]`, the default data space used by the
    /// workload generators.
    pub const UNIT: Rect = Rect {
        lo: Point::new(0.0, 0.0),
        hi: Point::new(1.0, 1.0),
    };

    /// A degenerate rectangle suitable as the identity for
    /// [`Rect::union`] accumulation.
    pub const EMPTY: Rect = Rect {
        lo: Point::new(f64::INFINITY, f64::INFINITY),
        hi: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
    };

    /// Bottom-left corner, `BL(R)` in the paper's notation.
    #[inline]
    pub fn bl(&self) -> Point {
        self.lo
    }

    /// Top-right corner, `TR(R)` in the paper's notation.
    #[inline]
    pub fn tr(&self) -> Point {
        self.hi
    }

    /// Returns `true` for the accumulation identity produced by
    /// [`Rect::EMPTY`] (no point ever added).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo.x > self.hi.x || self.lo.y > self.hi.y
    }

    /// Width along the x axis.
    #[inline]
    pub fn width(&self) -> f64 {
        (self.hi.x - self.lo.x).max(0.0)
    }

    /// Height along the y axis.
    #[inline]
    pub fn height(&self) -> f64 {
        (self.hi.y - self.lo.y).max(0.0)
    }

    /// Area of the rectangle. The paper expresses query selectivity as the
    /// fraction of the *data space* area covered by the query rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() * self.height()
        }
    }

    /// Center of the rectangle.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.lo.x + self.hi.x) / 2.0, (self.lo.y + self.hi.y) / 2.0)
    }

    /// Returns `true` when the point lies inside the rectangle (inclusive on
    /// all edges). This is the filter predicate of the scanning phase.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// Returns `true` when `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        !other.is_empty()
            && self.lo.x <= other.lo.x
            && self.lo.y <= other.lo.y
            && self.hi.x >= other.hi.x
            && self.hi.y >= other.hi.y
    }

    /// Returns `true` when the two rectangles overlap (closed-interval
    /// semantics: touching edges count as overlap).
    #[inline]
    pub fn overlaps(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.lo.x <= other.hi.x
            && other.lo.x <= self.hi.x
            && self.lo.y <= other.hi.y
            && other.lo.y <= self.hi.y
    }

    /// Intersection of two rectangles, or `None` when they do not overlap.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.overlaps(other) {
            return None;
        }
        Some(Rect::new(self.lo.max(&other.lo), self.hi.min(&other.hi)))
    }

    /// Smallest rectangle containing both operands.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            lo: self.lo.min(&other.lo),
            hi: self.hi.max(&other.hi),
        }
    }

    /// Grows the rectangle to include `p` (used to accumulate tight bounding
    /// boxes of leaf pages).
    #[inline]
    pub fn expand(&mut self, p: &Point) {
        self.lo = self.lo.min(p);
        self.hi = self.hi.max(p);
    }

    /// Bounding box of a point slice, or [`Rect::EMPTY`] for an empty slice.
    pub fn bounding(points: &[Point]) -> Rect {
        let mut acc = Rect::EMPTY;
        for p in points {
            acc.expand(p);
        }
        acc
    }

    /// Minimum distance from a point to the rectangle (zero when inside),
    /// used by best-first kNN search over index cells.
    pub fn min_distance(&self, p: &Point) -> f64 {
        self.min_distance_squared(p).sqrt()
    }

    /// Squared minimum distance from a point to the rectangle.
    pub fn min_distance_squared(&self, p: &Point) -> f64 {
        if self.is_empty() {
            return f64::INFINITY;
        }
        let dx = if p.x < self.lo.x {
            self.lo.x - p.x
        } else if p.x > self.hi.x {
            p.x - self.hi.x
        } else {
            0.0
        };
        let dy = if p.y < self.lo.y {
            self.lo.y - p.y
        } else if p.y > self.hi.y {
            p.y - self.hi.y
        } else {
            0.0
        };
        dx * dx + dy * dy
    }

    /// Clamps a point into the rectangle.
    #[inline]
    pub fn clamp_point(&self, p: &Point) -> Point {
        Point::new(
            p.x.clamp(self.lo.x, self.hi.x),
            p.y.clamp(self.lo.y, self.hi.y),
        )
    }

    /// Builds a query rectangle centred at `center` covering `fraction` of
    /// `space`'s area with the given aspect ratio (`width / height`), clipped
    /// to the data space. This is the query-generation procedure described in
    /// Section 6.2: centres are sampled from check-in locations and the box
    /// grows in all four directions until it covers the requested portion of
    /// the data space.
    pub fn query_box(space: &Rect, center: Point, fraction: f64, aspect: f64) -> Rect {
        assert!(fraction > 0.0, "selectivity fraction must be positive");
        assert!(aspect > 0.0, "aspect ratio must be positive");
        let target_area = space.area() * fraction;
        // width * height = target_area and width / height = aspect
        let height = (target_area / aspect).sqrt();
        let width = target_area / height;
        let half_w = width / 2.0;
        let half_h = height / 2.0;
        let candidate = Rect::from_corners(
            Point::new(center.x - half_w, center.y - half_h),
            Point::new(center.x + half_w, center.y + half_h),
        );
        // Clip to the data space; shift back inside when the clip would lose
        // area (keeps the covered fraction close to the request even for
        // centres near the boundary).
        let mut lo = candidate.lo;
        let mut hi = candidate.hi;
        if lo.x < space.lo.x {
            let shift = space.lo.x - lo.x;
            lo.x += shift;
            hi.x += shift;
        }
        if lo.y < space.lo.y {
            let shift = space.lo.y - lo.y;
            lo.y += shift;
            hi.y += shift;
        }
        if hi.x > space.hi.x {
            let shift = hi.x - space.hi.x;
            lo.x -= shift;
            hi.x -= shift;
        }
        if hi.y > space.hi.y {
            let shift = hi.y - space.hi.y;
            lo.y -= shift;
            hi.y -= shift;
        }

        Rect::from_corners(space.clamp_point(&lo), space.clamp_point(&hi))
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} .. {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_and_dimensions() {
        let r = Rect::from_coords(0.0, 0.0, 2.0, 3.0);
        assert_eq!(r.width(), 2.0);
        assert_eq!(r.height(), 3.0);
        assert_eq!(r.area(), 6.0);
        assert_eq!(r.center(), Point::new(1.0, 1.5));
    }

    #[test]
    fn empty_rect_behaviour() {
        assert!(Rect::EMPTY.is_empty());
        assert_eq!(Rect::EMPTY.area(), 0.0);
        assert!(!Rect::EMPTY.overlaps(&Rect::UNIT));
        assert!(!Rect::UNIT.overlaps(&Rect::EMPTY));
        assert_eq!(Rect::EMPTY.union(&Rect::UNIT), Rect::UNIT);
        assert_eq!(Rect::UNIT.union(&Rect::EMPTY), Rect::UNIT);
    }

    #[test]
    fn containment() {
        let r = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        assert!(r.contains(&Point::new(0.0, 0.0)), "edges are inclusive");
        assert!(r.contains(&Point::new(1.0, 1.0)));
        assert!(r.contains(&Point::new(0.5, 0.5)));
        assert!(!r.contains(&Point::new(1.1, 0.5)));
        assert!(r.contains_rect(&Rect::from_coords(0.2, 0.2, 0.8, 0.8)));
        assert!(!r.contains_rect(&Rect::from_coords(0.2, 0.2, 1.2, 0.8)));
    }

    #[test]
    fn overlap_and_intersection() {
        let a = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let b = Rect::from_coords(0.5, 0.5, 2.0, 2.0);
        let c = Rect::from_coords(1.5, 1.5, 2.0, 2.0);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(
            a.intersection(&b),
            Some(Rect::from_coords(0.5, 0.5, 1.0, 1.0))
        );
        assert_eq!(a.intersection(&c), None);
        // touching edges overlap under closed-interval semantics
        let d = Rect::from_coords(1.0, 0.0, 2.0, 1.0);
        assert!(a.overlaps(&d));
    }

    #[test]
    fn union_and_bounding() {
        let a = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let b = Rect::from_coords(2.0, -1.0, 3.0, 0.5);
        assert_eq!(a.union(&b), Rect::from_coords(0.0, -1.0, 3.0, 1.0));
        let pts = [
            Point::new(0.5, 0.5),
            Point::new(-1.0, 2.0),
            Point::new(3.0, 0.0),
        ];
        assert_eq!(Rect::bounding(&pts), Rect::from_coords(-1.0, 0.0, 3.0, 2.0));
        assert!(Rect::bounding(&[]).is_empty());
    }

    #[test]
    fn min_distance() {
        let r = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        assert_eq!(r.min_distance(&Point::new(0.5, 0.5)), 0.0);
        assert_eq!(r.min_distance(&Point::new(2.0, 0.5)), 1.0);
        assert_eq!(r.min_distance_squared(&Point::new(2.0, 2.0)), 2.0);
    }

    #[test]
    fn query_box_has_requested_area_and_stays_inside() {
        let space = Rect::UNIT;
        let q = Rect::query_box(&space, Point::new(0.5, 0.5), 0.01, 1.0);
        assert!((q.area() - 0.01).abs() < 1e-12);
        assert!(space.contains_rect(&q));

        // Near a corner the box is shifted back inside the space.
        let q = Rect::query_box(&space, Point::new(0.999, 0.001), 0.0064, 2.0);
        assert!(space.contains_rect(&q));
        assert!((q.area() - 0.0064).abs() < 1e-9);
    }

    #[test]
    fn clamp_point_projects_into_rect() {
        let r = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        assert_eq!(r.clamp_point(&Point::new(-1.0, 0.5)), Point::new(0.0, 0.5));
        assert_eq!(r.clamp_point(&Point::new(2.0, 3.0)), Point::new(1.0, 1.0));
    }
}
