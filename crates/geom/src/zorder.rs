//! Classic Z-order (Morton) arithmetic in rank / grid space.
//!
//! WaZI itself operates in the original data space and never computes Morton
//! codes, but two parts of the evaluation need them:
//!
//! * the rank-space Z-order baselines of Figure 4 (`ZM`/`Zpgm`-style sorted
//!   array index in `wazi-baselines`), and
//! * the BIGMIN-style successor computation used by that baseline to skip
//!   empty Z-ranges.

use crate::point::Point;
use crate::rect::Rect;

/// Number of bits per dimension used when quantising coordinates.
pub const BITS_PER_DIM: u32 = 31;

/// Spreads the lower 31 bits of `v` so that bit `i` moves to bit `2 i`.
#[inline]
pub fn interleave_bits(v: u32) -> u64 {
    let mut x = u64::from(v) & 0x7FFF_FFFF;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`interleave_bits`]: collects every second bit starting at 0.
#[inline]
pub fn deinterleave_bits(z: u64) -> u32 {
    let mut x = z & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

/// Morton code of an (x, y) grid cell: x bits occupy the even positions and
/// y bits the odd positions, so ordering by code yields the classic Z curve.
#[inline]
pub fn morton_encode(x: u32, y: u32) -> u64 {
    interleave_bits(x) | (interleave_bits(y) << 1)
}

/// Inverse of [`morton_encode`].
#[inline]
pub fn morton_decode(z: u64) -> (u32, u32) {
    (deinterleave_bits(z), deinterleave_bits(z >> 1))
}

/// Maps real-valued coordinates into the `[0, 2^bits)` integer grid relative
/// to a bounding data space and produces their Morton code.
#[derive(Debug, Clone, Copy)]
pub struct ZOrderMapper {
    space: Rect,
    scale_x: f64,
    scale_y: f64,
    max_cell: u32,
}

impl ZOrderMapper {
    /// Creates a mapper over the given data space using `bits` bits per
    /// dimension (at most [`BITS_PER_DIM`]).
    pub fn new(space: Rect, bits: u32) -> Self {
        assert!(bits > 0 && bits <= BITS_PER_DIM, "bits must be in 1..=31");
        assert!(!space.is_empty(), "data space must be non-empty");
        let cells = (1u64 << bits) as f64;
        let max_cell = (1u64 << bits) as u32 - 1;
        let width = space.width();
        let height = space.height();
        Self {
            space,
            scale_x: if width > 0.0 { cells / width } else { 0.0 },
            scale_y: if height > 0.0 { cells / height } else { 0.0 },
            max_cell,
        }
    }

    /// The data space this mapper quantises.
    pub fn space(&self) -> Rect {
        self.space
    }

    /// Grid cell of a point (clamped into the data space).
    #[inline]
    pub fn cell(&self, p: &Point) -> (u32, u32) {
        let clamped = self.space.clamp_point(p);
        let gx = ((clamped.x - self.space.lo.x) * self.scale_x) as u32;
        let gy = ((clamped.y - self.space.lo.y) * self.scale_y) as u32;
        (gx.min(self.max_cell), gy.min(self.max_cell))
    }

    /// Morton code of a point.
    #[inline]
    pub fn code(&self, p: &Point) -> u64 {
        let (gx, gy) = self.cell(p);
        morton_encode(gx, gy)
    }

    /// Morton codes of a query rectangle's corners: the classic range-query
    /// interval `[code(BL), code(TR)]` scanned by rank-space Z-indexes.
    #[inline]
    pub fn query_interval(&self, query: &Rect) -> (u64, u64) {
        (self.code(&query.bl()), self.code(&query.tr()))
    }
}

/// BIGMIN (Tropf & Herzog 1981): the smallest Morton code greater than
/// `current` whose decoded cell lies inside the grid-aligned query box
/// `[min_code, max_code]`.
///
/// The rank-space sorted-array baseline uses this to jump over contiguous
/// runs of Z-values that fall outside the query rectangle, mirroring the role
/// the look-ahead pointers play for WaZI.
pub fn bigmin(current: u64, min_code: u64, max_code: u64) -> Option<u64> {
    debug_assert!(min_code <= max_code);
    let mut bigmin: Option<u64> = None;
    let mut min = min_code;
    let mut max = max_code;
    // Examine bits from the most significant downwards, maintaining the
    // candidate interval [min, max] restricted by decisions so far.
    for bit in (0..64u32).rev() {
        let mask = 1u64 << bit;
        let current_bit = current & mask != 0;
        let min_bit = min & mask != 0;
        let max_bit = max & mask != 0;
        match (current_bit, min_bit, max_bit) {
            (false, false, false) => {}
            (false, false, true) => {
                // Query straddles this bit: the upper half is a candidate
                // restart point, continue searching the lower half.
                bigmin = Some(load_min(min, bit));
                max = load_max(max, bit);
            }
            (false, true, true) => {
                // The whole remaining query lies above `current`.
                return Some(min);
            }
            (true, false, false) => {
                // The whole remaining query lies below `current`: the best
                // restart found so far (if any) is the answer.
                return bigmin;
            }
            (true, false, true) => {
                min = load_min(min, bit);
            }
            (true, true, true) => {}
            // min_bit set while max_bit clear would mean min > max in this
            // prefix, which cannot happen for a valid interval.
            (_, true, false) => unreachable!("invalid BIGMIN interval"),
        }
    }
    bigmin
}

/// Sets bit `bit` of `value` and clears all lower bits *of the same
/// dimension* (every second bit below it), producing the smallest code in the
/// upper half of the split.
fn load_min(value: u64, bit: u32) -> u64 {
    let dim_mask = dimension_mask(bit);
    let below = (1u64 << bit) - 1;
    (value & !(dim_mask & below)) | (1u64 << bit)
}

/// Clears bit `bit` of `value` and sets all lower bits of the same dimension,
/// producing the largest code in the lower half of the split.
fn load_max(value: u64, bit: u32) -> u64 {
    let dim_mask = dimension_mask(bit);
    let below = (1u64 << bit) - 1;
    (value & !(1u64 << bit)) | (dim_mask & below)
}

/// Mask selecting the bits belonging to the same dimension as `bit`
/// (even positions for x, odd positions for y).
#[inline]
fn dimension_mask(bit: u32) -> u64 {
    if bit.is_multiple_of(2) {
        0x5555_5555_5555_5555
    } else {
        0xAAAA_AAAA_AAAA_AAAA
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_round_trips() {
        for v in [0u32, 1, 2, 3, 1000, 0x7FFF_FFFF] {
            assert_eq!(deinterleave_bits(interleave_bits(v)), v);
        }
    }

    #[test]
    fn morton_round_trips_and_orders_quadrants() {
        assert_eq!(morton_decode(morton_encode(123, 456)), (123, 456));
        // Z-order visits (0,0), (1,0), (0,1), (1,1) for a 2x2 grid with x in
        // the low bit — matching the abcd (A=BL, B=BR, C=TL, D=TR) order.
        let codes = [
            morton_encode(0, 0),
            morton_encode(1, 0),
            morton_encode(0, 1),
            morton_encode(1, 1),
        ];
        assert_eq!(codes, [0, 1, 2, 3]);
    }

    #[test]
    fn mapper_clamps_and_orders_dominated_points() {
        let mapper = ZOrderMapper::new(Rect::UNIT, 16);
        let inside = mapper.code(&Point::new(0.25, 0.25));
        let dominating = mapper.code(&Point::new(0.75, 0.75));
        assert!(inside < dominating, "dominated point must sort earlier");
        // Out-of-space points clamp to the boundary instead of wrapping.
        let clamped = mapper.cell(&Point::new(2.0, -1.0));
        assert_eq!(clamped, (u16::MAX as u32, 0));
    }

    #[test]
    fn query_interval_brackets_contained_points() {
        let mapper = ZOrderMapper::new(Rect::UNIT, 16);
        let query = Rect::from_coords(0.2, 0.3, 0.6, 0.7);
        let (lo, hi) = mapper.query_interval(&query);
        for p in [
            Point::new(0.2, 0.3),
            Point::new(0.6, 0.7),
            Point::new(0.4, 0.5),
        ] {
            let code = mapper.code(&p);
            assert!(code >= lo && code <= hi);
        }
    }

    #[test]
    fn bigmin_returns_next_code_inside_query() {
        // 8x8 grid, query box x in [1,3], y in [2,5].
        let min_code = morton_encode(1, 2);
        let max_code = morton_encode(3, 5);
        // Collect all codes inside the box.
        let mut inside: Vec<u64> = (1..=3u32)
            .flat_map(|x| (2..=5u32).map(move |y| morton_encode(x, y)))
            .collect();
        inside.sort_unstable();
        // For every code in [min, max] that is *outside* the box, BIGMIN must
        // return the next inside code (or None when none exists).
        for code in min_code..=max_code {
            let (x, y) = morton_decode(code);
            let is_inside = (1..=3).contains(&x) && (2..=5).contains(&y);
            if is_inside {
                continue;
            }
            let expected = inside.iter().copied().find(|&c| c > code);
            assert_eq!(
                bigmin(code, min_code, max_code),
                expected,
                "BIGMIN mismatch at code {code} = ({x}, {y})"
            );
        }
    }

    #[test]
    fn bigmin_when_everything_is_above_or_below() {
        let min_code = morton_encode(4, 4);
        let max_code = morton_encode(7, 7);
        // current below the whole interval -> the minimum code.
        assert_eq!(bigmin(0, min_code, max_code), Some(min_code));
        // current above the whole interval -> no successor.
        assert_eq!(bigmin(max_code + 1, min_code, max_code), None);
    }
}
