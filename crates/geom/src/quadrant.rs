//! Quadrants, child-cell orderings and query-case classification.
//!
//! A node of a (generalized) Z-index partitions its cell into four quadrants
//! around a split point `h = (x, y)`. Following Algorithm 1 of the paper,
//! the quadrant of a point `p` is computed from the two comparison bits
//! `bit_x = p.x > h.x` and `bit_y = p.y > h.y`.
//!
//! The paper fixes the *spatial* labels `A`, `B`, `C`, `D` of the quadrants
//! (bottom-left, bottom-right, top-left, top-right respectively — this is the
//! assignment that makes the cost formulas of Eqs. (1) and (2) consistent with
//! Algorithm 1) and lets the *curve order* of the children be either `abcd`
//! or `acbd`. Both orderings keep the bottom-left quadrant first and the
//! top-right quadrant last, which is exactly the condition required for the
//! ordering to preserve dominance monotonicity.

use crate::point::Point;
use crate::rect::Rect;

/// The four spatial quadrants of a split cell.
///
/// The discriminant encodes the comparison bits of Algorithm 1:
/// `quadrant as u8 == 2 * bit_y + bit_x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Quadrant {
    /// `A`: bottom-left (x <= split.x, y <= split.y).
    A = 0,
    /// `B`: bottom-right (x > split.x, y <= split.y).
    B = 1,
    /// `C`: top-left (x <= split.x, y > split.y).
    C = 2,
    /// `D`: top-right (x > split.x, y > split.y).
    D = 3,
}

impl Quadrant {
    /// All quadrants in spatial-label order `A, B, C, D`.
    pub const ALL: [Quadrant; 4] = [Quadrant::A, Quadrant::B, Quadrant::C, Quadrant::D];

    /// Classifies a point relative to a split point (Lines 4–5 of
    /// Algorithm 1).
    #[inline]
    pub fn of(point: &Point, split: &Point) -> Quadrant {
        let bit_x = point.x > split.x;
        let bit_y = point.y > split.y;
        match (bit_y, bit_x) {
            (false, false) => Quadrant::A,
            (false, true) => Quadrant::B,
            (true, false) => Quadrant::C,
            (true, true) => Quadrant::D,
        }
    }

    /// Index `0..4` of the quadrant in spatial-label order.
    #[inline]
    pub fn label_index(self) -> usize {
        self as usize
    }

    /// The sub-rectangle of `cell` covered by this quadrant for the given
    /// split point. The split point itself belongs to quadrant `A`
    /// (closed on the low side), matching the strict `>` comparisons of
    /// Algorithm 1.
    pub fn region(self, cell: &Rect, split: &Point) -> Rect {
        let sx = split.x.clamp(cell.lo.x, cell.hi.x);
        let sy = split.y.clamp(cell.lo.y, cell.hi.y);
        match self {
            Quadrant::A => Rect::from_coords(cell.lo.x, cell.lo.y, sx, sy),
            Quadrant::B => Rect::from_coords(sx, cell.lo.y, cell.hi.x, sy),
            Quadrant::C => Rect::from_coords(cell.lo.x, sy, sx, cell.hi.y),
            Quadrant::D => Rect::from_coords(sx, sy, cell.hi.x, cell.hi.y),
        }
    }
}

/// Curve ordering of the four child cells of a node.
///
/// Both orderings place `A` (bottom-left) first and `D` (top-right) last and
/// therefore preserve the dominance monotonicity of the leaf list; they only
/// differ in whether the bottom-right (`B`) or top-left (`C`) child comes
/// second. The base Z-index always uses [`CellOrdering::Abcd`]; WaZI chooses
/// per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CellOrdering {
    /// `A, B, C, D` — the classic Z / N-shaped curve.
    #[default]
    Abcd,
    /// `A, C, B, D` — the mirrored curve.
    Acbd,
}

impl CellOrdering {
    /// Both orderings, convenient for enumerating candidates during greedy
    /// construction (Line 3 of Algorithm 3).
    pub const ALL: [CellOrdering; 2] = [CellOrdering::Abcd, CellOrdering::Acbd];

    /// Quadrants in curve order (position -> quadrant).
    #[inline]
    pub fn curve(&self) -> [Quadrant; 4] {
        match self {
            CellOrdering::Abcd => [Quadrant::A, Quadrant::B, Quadrant::C, Quadrant::D],
            CellOrdering::Acbd => [Quadrant::A, Quadrant::C, Quadrant::B, Quadrant::D],
        }
    }

    /// Curve position of a quadrant (quadrant -> position), the `cid`
    /// computed in Lines 6–9 of Algorithm 1.
    #[inline]
    pub fn position(&self, quadrant: Quadrant) -> usize {
        match self {
            CellOrdering::Abcd => quadrant as usize,
            CellOrdering::Acbd => match quadrant {
                Quadrant::A => 0,
                Quadrant::C => 1,
                Quadrant::B => 2,
                Quadrant::D => 3,
            },
        }
    }

    /// Child id for a point query, exactly Lines 4–9 of Algorithm 1.
    #[inline]
    pub fn child_of(&self, point: &Point, split: &Point) -> usize {
        self.position(Quadrant::of(point, split))
    }
}

impl std::fmt::Display for CellOrdering {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellOrdering::Abcd => write!(f, "abcd"),
            CellOrdering::Acbd => write!(f, "acbd"),
        }
    }
}

/// Classification of a range query relative to a split point: the quadrants
/// containing its bottom-left and top-right corners (`δ_{R ∈ XY}` in the
/// paper's cost formulas).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryCase {
    /// Quadrant containing `BL(R)`.
    pub bl: Quadrant,
    /// Quadrant containing `TR(R)`.
    pub tr: Quadrant,
}

impl QueryCase {
    /// Classifies a query rectangle against a split point.
    #[inline]
    pub fn classify(query: &Rect, split: &Point) -> QueryCase {
        QueryCase {
            bl: Quadrant::of(&query.bl(), split),
            tr: Quadrant::of(&query.tr(), split),
        }
    }

    /// Returns `true` when the query is wholly contained in a single
    /// quadrant (the `δ_{R ∈ XX}` cases of Eq. (1)).
    #[inline]
    pub fn is_contained(&self) -> bool {
        self.bl == self.tr
    }

    /// The set of quadrants overlapped by a query in this case.
    ///
    /// Because `BL(R)` is dominated by `TR(R)` the possible cases are the
    /// nine listed in Eq. (1): `AA, BB, CC, DD, AB, CD, AC, BD, AD`. The
    /// overlapped quadrants follow directly from which corners the query
    /// spans.
    pub fn overlapped(&self) -> Vec<Quadrant> {
        use Quadrant::*;
        match (self.bl, self.tr) {
            (a, b) if a == b => vec![a],
            (A, B) => vec![A, B],
            (C, D) => vec![C, D],
            (A, C) => vec![A, C],
            (B, D) => vec![B, D],
            (A, D) => vec![A, B, C, D],
            // Degenerate cases can only arise from zero-area queries lying
            // exactly on a split boundary; treat them as overlapping the two
            // end quadrants.
            (a, b) => vec![a, b],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPLIT: Point = Point::new(0.5, 0.5);

    #[test]
    fn quadrant_classification_matches_algorithm_1() {
        assert_eq!(Quadrant::of(&Point::new(0.2, 0.2), &SPLIT), Quadrant::A);
        assert_eq!(Quadrant::of(&Point::new(0.7, 0.2), &SPLIT), Quadrant::B);
        assert_eq!(Quadrant::of(&Point::new(0.2, 0.7), &SPLIT), Quadrant::C);
        assert_eq!(Quadrant::of(&Point::new(0.7, 0.7), &SPLIT), Quadrant::D);
        // Points on the split boundary use `>` so they fall to the low side.
        assert_eq!(Quadrant::of(&SPLIT, &SPLIT), Quadrant::A);
    }

    #[test]
    fn orderings_keep_a_first_and_d_last() {
        for ordering in CellOrdering::ALL {
            let curve = ordering.curve();
            assert_eq!(curve[0], Quadrant::A);
            assert_eq!(curve[3], Quadrant::D);
            // position() must be the inverse of curve()
            for (pos, q) in curve.iter().enumerate() {
                assert_eq!(ordering.position(*q), pos);
            }
        }
    }

    #[test]
    fn child_of_matches_paper_bit_arithmetic() {
        // abcd: cid = 2*bit_y + bit_x ; acbd: cid = 2*bit_x + bit_y
        let cases = [
            (Point::new(0.1, 0.1), 0usize, 0usize),
            (Point::new(0.9, 0.1), 1, 2),
            (Point::new(0.1, 0.9), 2, 1),
            (Point::new(0.9, 0.9), 3, 3),
        ];
        for (p, abcd, acbd) in cases {
            assert_eq!(CellOrdering::Abcd.child_of(&p, &SPLIT), abcd);
            assert_eq!(CellOrdering::Acbd.child_of(&p, &SPLIT), acbd);
        }
    }

    #[test]
    fn regions_tile_the_cell() {
        let cell = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let split = Point::new(0.3, 0.6);
        let total: f64 = Quadrant::ALL
            .iter()
            .map(|q| q.region(&cell, &split).area())
            .sum();
        assert!((total - cell.area()).abs() < 1e-12);
        assert_eq!(
            Quadrant::A.region(&cell, &split),
            Rect::from_coords(0.0, 0.0, 0.3, 0.6)
        );
        assert_eq!(
            Quadrant::D.region(&cell, &split),
            Rect::from_coords(0.3, 0.6, 1.0, 1.0)
        );
    }

    #[test]
    fn region_clamps_split_outside_cell() {
        let cell = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let split = Point::new(2.0, -1.0);
        let a = Quadrant::A.region(&cell, &split);
        assert_eq!(a, Rect::from_coords(0.0, 0.0, 1.0, 0.0));
        let d = Quadrant::D.region(&cell, &split);
        assert_eq!(d, Rect::from_coords(1.0, 0.0, 1.0, 1.0));
    }

    #[test]
    fn query_case_classification() {
        // Query spanning the whole cell.
        let q = Rect::from_coords(0.1, 0.1, 0.9, 0.9);
        let case = QueryCase::classify(&q, &SPLIT);
        assert_eq!(case.bl, Quadrant::A);
        assert_eq!(case.tr, Quadrant::D);
        assert_eq!(case.overlapped(), Quadrant::ALL.to_vec());
        assert!(!case.is_contained());

        // Query contained in the top-right quadrant.
        let q = Rect::from_coords(0.6, 0.6, 0.9, 0.9);
        let case = QueryCase::classify(&q, &SPLIT);
        assert!(case.is_contained());
        assert_eq!(case.overlapped(), vec![Quadrant::D]);

        // Left-half vertical span: A to C.
        let q = Rect::from_coords(0.1, 0.1, 0.4, 0.9);
        let case = QueryCase::classify(&q, &SPLIT);
        assert_eq!((case.bl, case.tr), (Quadrant::A, Quadrant::C));
        assert_eq!(case.overlapped(), vec![Quadrant::A, Quadrant::C]);

        // Bottom-half horizontal span: A to B.
        let q = Rect::from_coords(0.1, 0.1, 0.9, 0.4);
        let case = QueryCase::classify(&q, &SPLIT);
        assert_eq!((case.bl, case.tr), (Quadrant::A, Quadrant::B));
        assert_eq!(case.overlapped(), vec![Quadrant::A, Quadrant::B]);
    }
}
