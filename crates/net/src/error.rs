//! The transport's failure taxonomy: every way the wire can fail, typed.
//!
//! Two layers, mirroring what a caller can observe:
//!
//! * [`TransportError`] — the frame never made it (or never made sense):
//!   socket failures, timeouts, framing violations, checksum mismatches.
//!   These say nothing about the query; [`TransportError::is_transient`]
//!   tells the client's retry loop which ones are worth another attempt.
//! * [`NetError`] — what [`crate::Client`] ultimately returns: a transport
//!   failure, a typed [`ServiceError`] relayed losslessly from the server
//!   (the same value an in-process submitter would see), or
//!   [`NetError::Rejected`] — the wire form of [`wazi_service::Submit::Rejected`],
//!   the service's load-shed "429".

use std::io;

use wazi_service::ServiceError;

/// A wire-level failure: the frame was lost, late, or malformed.
///
/// Marked `#[non_exhaustive]` like every error taxonomy in this workspace:
/// the failure vocabulary grows with the transport, and downstream matches
/// must keep a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransportError {
    /// A socket operation failed. The [`io::ErrorKind`] is preserved for
    /// classification; the message is the OS error text.
    Io {
        /// Kind of the underlying I/O error.
        kind: io::ErrorKind,
        /// Display text of the underlying I/O error.
        message: String,
    },
    /// The frame did not start with the protocol magic — the peer is not
    /// speaking this protocol, or the stream lost sync.
    BadMagic([u8; 2]),
    /// The peer speaks an incompatible protocol version.
    BadVersion(u8),
    /// The frame kind byte is not one the decoder knows.
    UnknownKind(u8),
    /// The declared payload length exceeds the receiver's frame-size cap.
    /// Raised *before* any allocation: an adversarial length prefix costs
    /// the receiver 16 header bytes, never a buffer.
    FrameTooLarge {
        /// Declared payload length.
        len: u32,
        /// The receiver's configured cap.
        max: u32,
    },
    /// The frame checksum did not match its contents: bit corruption in
    /// transit. The stream can no longer be trusted to be in sync.
    ChecksumMismatch,
    /// The payload ended before the field named by the context string was
    /// fully decoded (an internal length field lied).
    Truncated(&'static str),
    /// The bytes framed correctly but violate the protocol (bad tag,
    /// invalid UTF-8, trailing garbage, unrecognised error variant).
    Protocol(String),
    /// The peer sent an error frame reporting a transport-level problem
    /// with something *we* sent (e.g. a malformed request payload).
    PeerReported(String),
    /// A read or write deadline expired.
    Timeout,
    /// The connection closed mid-conversation (EOF inside a frame, reset,
    /// broken pipe).
    ConnectionLost,
}

impl TransportError {
    /// Whether a retry on a fresh connection has a chance of succeeding.
    ///
    /// Transient: socket errors, timeouts, lost connections, and checksum
    /// mismatches (corruption in transit). Permanent: framing and protocol
    /// violations — they would recur byte-for-byte on retry.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            TransportError::Io { .. }
                | TransportError::Timeout
                | TransportError::ConnectionLost
                | TransportError::ChecksumMismatch
        )
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io { kind, message } => write!(f, "i/o error ({kind:?}): {message}"),
            TransportError::BadMagic(magic) => {
                write!(f, "bad frame magic {magic:02x?} (stream out of sync?)")
            }
            TransportError::BadVersion(version) => {
                write!(f, "unsupported protocol version {version}")
            }
            TransportError::UnknownKind(kind) => write!(f, "unknown frame kind {kind}"),
            TransportError::FrameTooLarge { len, max } => {
                write!(
                    f,
                    "declared payload of {len} bytes exceeds the {max}-byte cap"
                )
            }
            TransportError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            TransportError::Truncated(context) => {
                write!(f, "payload truncated while decoding {context}")
            }
            TransportError::Protocol(message) => write!(f, "protocol violation: {message}"),
            TransportError::PeerReported(message) => {
                write!(f, "peer rejected our frame: {message}")
            }
            TransportError::Timeout => write!(f, "deadline expired"),
            TransportError::ConnectionLost => write!(f, "connection lost"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<io::Error> for TransportError {
    fn from(err: io::Error) -> Self {
        match err.kind() {
            // Both timeout kinds appear in practice: `read_timeout` on Unix
            // surfaces `WouldBlock`, on Windows `TimedOut`.
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => TransportError::Timeout,
            io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe => TransportError::ConnectionLost,
            kind => TransportError::Io {
                kind,
                message: err.to_string(),
            },
        }
    }
}

/// What a [`crate::Client`] request ultimately resolves to when it does not
/// resolve to a [`wazi_service::QueryResponse`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetError {
    /// The wire failed (after exhausting any configured retries).
    Transport(TransportError),
    /// The service answered with a typed error — the exact [`ServiceError`]
    /// an in-process submitter would have received.
    Service(ServiceError),
    /// The service shed the query under load ([`wazi_service::Submit::Rejected`])
    /// and retries, if enabled, were exhausted.
    Rejected,
}

impl NetError {
    /// Whether this is the load-shed outcome.
    pub fn is_rejected(&self) -> bool {
        matches!(self, NetError::Rejected)
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Transport(err) => write!(f, "transport error: {err}"),
            NetError::Service(err) => write!(f, "service error: {err}"),
            NetError::Rejected => write!(f, "request shed by the service (queue full)"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Transport(err) => Some(err),
            NetError::Service(err) => Some(err),
            _ => None,
        }
    }
}

impl From<TransportError> for NetError {
    fn from(err: TransportError) -> Self {
        NetError::Transport(err)
    }
}

impl From<ServiceError> for NetError {
    fn from(err: ServiceError) -> Self {
        NetError::Service(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_classification() {
        assert!(TransportError::Timeout.is_transient());
        assert!(TransportError::ConnectionLost.is_transient());
        assert!(TransportError::ChecksumMismatch.is_transient());
        assert!(TransportError::Io {
            kind: io::ErrorKind::ConnectionRefused,
            message: "refused".into()
        }
        .is_transient());
        assert!(!TransportError::BadMagic([0, 0]).is_transient());
        assert!(!TransportError::FrameTooLarge { len: 9, max: 8 }.is_transient());
        assert!(!TransportError::Protocol("bad tag".into()).is_transient());
        assert!(!TransportError::PeerReported("bad payload".into()).is_transient());
    }

    #[test]
    fn io_errors_map_to_typed_kinds() {
        let timeout = io::Error::new(io::ErrorKind::WouldBlock, "would block");
        assert_eq!(TransportError::from(timeout), TransportError::Timeout);
        let eof = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        assert_eq!(TransportError::from(eof), TransportError::ConnectionLost);
        let refused = io::Error::new(io::ErrorKind::ConnectionRefused, "no");
        assert!(matches!(
            TransportError::from(refused),
            TransportError::Io {
                kind: io::ErrorKind::ConnectionRefused,
                ..
            }
        ));
    }

    #[test]
    fn displays_are_informative() {
        assert!(TransportError::ChecksumMismatch
            .to_string()
            .contains("checksum"));
        assert!(NetError::Rejected.to_string().contains("shed"));
        let err = NetError::Service(ServiceError::Closed);
        assert!(err.to_string().contains("shut down"));
    }
}
