//! Small shared helpers.

/// Fixed-increment splitmix64 step — the statelessly seedable generator the
/// workload and service crates use, inlined here so the transport stays
/// dependency-free. Drives the client's deterministic backoff jitter and
/// the seeded wire fault schedules.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixes() {
        let mut a = 42u64;
        let mut b = 42u64;
        assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        assert_ne!(splitmix64(&mut a), splitmix64(&mut a));
    }
}
