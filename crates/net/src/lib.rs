//! # wazi-net
//!
//! A hardened TCP front end for [`wazi_service::Service`] — std-only (no
//! async runtime), built from the same threads-and-channels parts as the
//! service itself.
//!
//! **The wire changes transport, never answers.** A query routed through
//! this crate resolves to the same [`wazi_service::QueryResponse`] —
//! bit-identical output and execution stats — as an in-process
//! [`wazi_service::Service::submit`] of the same plan. The facade
//! test-suite asserts this across every overview index.
//!
//! Three layers:
//!
//! * [`wire`] — the frame codec: length-prefixed, checksummed binary
//!   frames for requests, responses, typed errors, and the load-shed
//!   `Rejected` outcome. Decoding is hardened: typed errors, never a
//!   panic, never an allocation driven by an unvalidated length.
//! * [`Server`] — acceptor + per-connection reader/writer threads feeding
//!   [`wazi_service::Service::submit_with`], with read/write deadlines,
//!   malformed-input containment, slow-client severing, graceful drain on
//!   shutdown, and connection accounting in
//!   [`wazi_service::ServiceStats`].
//! * [`Client`] — a blocking resilient client: connect/request timeouts,
//!   jittered exponential-backoff retry of transient failures, request
//!   ids to drop duplicate responses.
//!
//! The default-on `fault-injection` feature adds [`WireFaultPlan`] — a
//! deterministic schedule of wire faults (corruption, truncation, stalls,
//! dropped connections, writer kills) the chaos tests drive through the
//! server's failpoints.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use wazi_core::{Query, QueryOutput, SpatialIndex, ZIndex};
//! use wazi_geom::{Point, Rect};
//! use wazi_net::{Client, ClientConfig, Server};
//! use wazi_service::Service;
//!
//! let points: Vec<Point> = (0..1_000)
//!     .map(|i| Point::new((i % 40) as f64 / 40.0, (i / 40) as f64 / 25.0))
//!     .collect();
//! let index: Arc<dyn SpatialIndex> = Arc::new(ZIndex::build_base(points));
//! let service = Service::builder(index).start();
//!
//! // Port 0: let the OS pick, then ask the server where it landed.
//! let server = Server::bind(service, "127.0.0.1:0").unwrap();
//! let client = Client::connect(server.local_addr(), ClientConfig::default()).unwrap();
//!
//! let response = client
//!     .request(Query::range_count(Rect::from_coords(0.1, 0.1, 0.6, 0.6)))
//!     .unwrap();
//! assert!(matches!(response.report.output, QueryOutput::Count(_)));
//!
//! let knn = client.request(Query::knn(Point::new(0.5, 0.5), 3)).unwrap();
//! assert!(matches!(knn.report.output, QueryOutput::Neighbors(ref n) if n.len() == 3));
//!
//! let stats = server.shutdown(); // drain: flush in-flight, then stop
//! assert_eq!(stats.completed, 2);
//! assert_eq!(stats.connections_opened, stats.connections_drained);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod error;
#[cfg(feature = "fault-injection")]
pub mod faults;
mod server;
mod util;
pub mod wire;

pub use client::{Client, ClientConfig};
pub use error::{NetError, TransportError};
#[cfg(feature = "fault-injection")]
pub use faults::{WireFault, WireFaultPlan};
pub use server::{Server, ServerBuilder, ServerConfig};
pub use wire::{Frame, FrameBody, RawFrame, WireError, DEFAULT_MAX_FRAME_LEN};
