//! The resilient client: a blocking, retrying front end over one TCP
//! connection.
//!
//! One [`Client`] drives one connection and one request at a time (spawn a
//! client per thread for parallel load — they are cheap). What it layers on
//! top of the raw socket:
//!
//! * **Connect and request timeouts.** Dialing uses
//!   [`ClientConfig::connect_timeout`]; every attempt of every request runs
//!   under [`ClientConfig::request_timeout`], enforced through the socket's
//!   read/write deadlines plus a per-attempt wall clock.
//! * **Retry with exponential backoff and jitter.** Transient failures —
//!   lost connections, timeouts, checksum mismatches, and (optionally) the
//!   service's load-shed [`Rejected`] — are retried on a fresh connection,
//!   up to [`ClientConfig::max_retries`] times, sleeping
//!   `min(base · 2^attempt, max)` scaled by a deterministic jitter factor
//!   in `[0.5, 1.0)`. Typed [`ServiceError`]s and protocol violations are
//!   *never* retried: they would recur byte-for-byte.
//! * **Request ids to detect duplicates.** Every request carries a fresh
//!   id; a response frame whose id does not match the request in flight
//!   (a stale answer surviving on a reused stream) is counted and dropped
//!   instead of being returned for the wrong query.
//!
//! [`Rejected`]: wazi_service::Submit::Rejected

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use wazi_core::engine::Query;
use wazi_service::{QueryResponse, SubmitOptions};

use crate::error::{NetError, TransportError};
use crate::util::splitmix64;
use crate::wire::{
    read_raw_frame, write_frame, Frame, FrameBody, WireError, DEFAULT_MAX_FRAME_LEN,
};

/// Tuning knobs of a [`Client`]. Construct with struct-update syntax over
/// [`ClientConfig::default`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Deadline for establishing a TCP connection.
    pub connect_timeout: Duration,
    /// Wall-clock deadline for one attempt of one request (also installed
    /// as the socket's read/write timeout).
    pub request_timeout: Duration,
    /// Retries after the first attempt (so `max_retries + 1` attempts
    /// total). Zero disables retrying.
    pub max_retries: u32,
    /// First backoff delay; doubles each retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Whether the service's load-shed `Rejected` outcome is retried (with
    /// backoff) or surfaced immediately as [`NetError::Rejected`].
    pub retry_rejected: bool,
    /// Payload-size cap applied to incoming response frames.
    pub max_frame_len: u32,
    /// Seed of the deterministic backoff jitter stream.
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(10),
            max_retries: 4,
            backoff_base: Duration::from_millis(20),
            backoff_max: Duration::from_secs(1),
            retry_rejected: true,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            jitter_seed: 0x5EED_C0DE,
        }
    }
}

/// Connection state under the client's mutex: at most one request is on the
/// wire at a time.
struct ClientState {
    stream: Option<TcpStream>,
    /// Distinguishes first-dial failures from reconnects in the counters.
    ever_connected: bool,
}

/// A resilient synchronous client for a `wazi-net` server — see the module
/// docs for the retry and duplicate-detection model.
pub struct Client {
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    state: Mutex<ClientState>,
    next_id: AtomicU64,
    jitter: Mutex<u64>,
    retries: AtomicU64,
    reconnects: AtomicU64,
    duplicates: AtomicU64,
    rejections: AtomicU64,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("addrs", &self.addrs)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Client {
    /// Connects to a server, dialing through the same retry/backoff loop
    /// requests use — so a client may start slightly before its server.
    pub fn connect(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Client, NetError> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|err| NetError::Transport(TransportError::from(err)))?
            .collect();
        if addrs.is_empty() {
            return Err(NetError::Transport(TransportError::Protocol(
                "address resolved to nothing".into(),
            )));
        }
        let client = Client {
            addrs,
            config,
            state: Mutex::new(ClientState {
                stream: None,
                ever_connected: false,
            }),
            next_id: AtomicU64::new(1),
            jitter: Mutex::new(config.jitter_seed),
            retries: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
        };
        // Eager dial so `connect` fails fast on a dead address, retried so
        // it tolerates a server that is still binding.
        client.with_retries(|client| {
            let mut state = lock(&client.state);
            client.ensure_connected(&mut state).map(|_| ())
        })?;
        Ok(client)
    }

    /// Submits one query with default [`SubmitOptions`], retrying transient
    /// failures per the config. Blocks until a response, a permanent error,
    /// or retry exhaustion.
    pub fn request(&self, query: Query) -> Result<QueryResponse, NetError> {
        self.request_with(query, SubmitOptions::new())
    }

    /// Submits one query with explicit [`SubmitOptions`] (deadline et al.,
    /// relayed to the server losslessly).
    pub fn request_with(
        &self,
        query: Query,
        options: SubmitOptions,
    ) -> Result<QueryResponse, NetError> {
        self.with_retries(|client| client.attempt(query.clone(), options))
    }

    /// Total transient-failure retries performed.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Times a lost connection was re-established.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Response frames dropped because their request id did not match the
    /// request in flight.
    pub fn duplicates_dropped(&self) -> u64 {
        self.duplicates.load(Ordering::Relaxed)
    }

    /// Load-shed (`Rejected`) responses observed, whether or not retried.
    pub fn rejections_seen(&self) -> u64 {
        self.rejections.load(Ordering::Relaxed)
    }

    /// The configuration this client runs with.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// Runs `op` up to `1 + max_retries` times, sleeping with jittered
    /// exponential backoff between attempts, retrying only transient
    /// outcomes.
    fn with_retries<T>(
        &self,
        mut op: impl FnMut(&Client) -> Result<T, NetError>,
    ) -> Result<T, NetError> {
        let mut attempt = 0u32;
        loop {
            let err = match op(self) {
                Ok(value) => return Ok(value),
                Err(err) => err,
            };
            let transient = match &err {
                NetError::Rejected => {
                    self.rejections.fetch_add(1, Ordering::Relaxed);
                    self.config.retry_rejected
                }
                NetError::Transport(err) => err.is_transient(),
                // A typed service error is the answer, not a wire failure.
                NetError::Service(_) => false,
            };
            if !transient || attempt >= self.config.max_retries {
                return Err(err);
            }
            attempt += 1;
            self.retries.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.backoff_delay(attempt));
        }
    }

    /// The jittered exponential backoff delay before retry `attempt`
    /// (1-based): `min(base · 2^(attempt-1), max)` scaled into `[0.5, 1.0)`
    /// deterministically from the jitter seed.
    fn backoff_delay(&self, attempt: u32) -> Duration {
        let exp = self
            .config
            .backoff_base
            .saturating_mul(1u32 << (attempt - 1).min(20))
            .min(self.config.backoff_max);
        let mut jitter = lock(&self.jitter);
        let draw = splitmix64(&mut jitter);
        drop(jitter);
        // Map the top 53 bits into [0.5, 1.0): full-jitter's worst herd
        // behaviour without ever zeroing the delay.
        let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(0.5 + unit / 2.0)
    }

    /// One attempt: ensure a connection, write the request frame, then read
    /// frames until the matching response (or a failure) under the attempt
    /// deadline. Any wire failure severs the cached connection so the next
    /// attempt redials.
    fn attempt(&self, query: Query, options: SubmitOptions) -> Result<QueryResponse, NetError> {
        let mut state = lock(&self.state);
        let stream = self.ensure_connected(&mut state)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let frame = Frame::request(id, query, options);
        if let Err(err) = write_frame(stream, &frame) {
            state.stream = None;
            return Err(NetError::Transport(err));
        }
        let deadline = Instant::now() + self.config.request_timeout;
        loop {
            if Instant::now() >= deadline {
                state.stream = None;
                return Err(NetError::Transport(TransportError::Timeout));
            }
            let stream = state.stream.as_mut().expect("stream present after write");
            let raw = match read_raw_frame(stream, self.config.max_frame_len) {
                Ok(Some(raw)) => raw,
                Ok(None) => {
                    state.stream = None;
                    return Err(NetError::Transport(TransportError::ConnectionLost));
                }
                Err(err) => {
                    state.stream = None;
                    return Err(NetError::Transport(err));
                }
            };
            if raw.request_id != id {
                // A stale answer to an abandoned request: count and drop
                // rather than return it for the wrong query.
                self.duplicates.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            return match raw.body() {
                Ok(FrameBody::Response(response)) => Ok(*response),
                Ok(FrameBody::Rejected) => Err(NetError::Rejected),
                Ok(FrameBody::Error(WireError::Service(err))) => Err(NetError::Service(err)),
                Ok(FrameBody::Error(WireError::Transport(message))) => {
                    // The server could not use what we sent; the stream
                    // may be out of sync on its side — redial.
                    state.stream = None;
                    Err(NetError::Transport(TransportError::PeerReported(message)))
                }
                Ok(_) => {
                    state.stream = None;
                    Err(NetError::Transport(TransportError::Protocol(
                        "unexpected frame kind from the server".into(),
                    )))
                }
                Err(err) => {
                    state.stream = None;
                    Err(NetError::Transport(err))
                }
            };
        }
    }

    /// Returns the cached connection, dialing if there is none.
    fn ensure_connected<'a>(
        &self,
        state: &'a mut ClientState,
    ) -> Result<&'a mut TcpStream, NetError> {
        if state.stream.is_none() {
            let stream = self.dial()?;
            if state.ever_connected {
                self.reconnects.fetch_add(1, Ordering::Relaxed);
            }
            state.ever_connected = true;
            state.stream = Some(stream);
        }
        Ok(state.stream.as_mut().expect("stream just ensured"))
    }

    fn dial(&self) -> Result<TcpStream, NetError> {
        let mut last: Option<TransportError> = None;
        for addr in &self.addrs {
            match TcpStream::connect_timeout(addr, self.config.connect_timeout) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_read_timeout(Some(self.config.request_timeout));
                    let _ = stream.set_write_timeout(Some(self.config.request_timeout));
                    return Ok(stream);
                }
                Err(err) => last = Some(TransportError::from(err)),
            }
        }
        Err(NetError::Transport(
            last.unwrap_or(TransportError::ConnectionLost),
        ))
    }
}

/// Poison-resistant lock helper (mirrors the service crate's discipline).
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps_with_jitter_bounds() {
        let client = Client {
            addrs: vec!["127.0.0.1:1".parse().unwrap()],
            config: ClientConfig::default(),
            state: Mutex::new(ClientState {
                stream: None,
                ever_connected: false,
            }),
            next_id: AtomicU64::new(1),
            jitter: Mutex::new(7),
            retries: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
        };
        let base = client.config.backoff_base;
        let max = client.config.backoff_max;
        for attempt in 1..=10u32 {
            let delay = client.backoff_delay(attempt);
            let ceiling = base.saturating_mul(1 << (attempt - 1).min(20)).min(max);
            assert!(
                delay <= ceiling,
                "delay {delay:?} above ceiling {ceiling:?}"
            );
            assert!(
                delay >= ceiling.mul_f64(0.5),
                "delay {delay:?} below half the ceiling {ceiling:?}"
            );
        }
        // Deep attempts stay pinned at the cap band.
        let deep = client.backoff_delay(30);
        assert!(deep <= max && deep >= max.mul_f64(0.5));
    }

    #[test]
    fn request_to_silent_server_times_out_transiently() {
        // A listener that accepts and then says nothing: the request must
        // resolve to a transient transport error (timeout or lost
        // connection), never hang.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sink = std::thread::spawn(move || {
            let mut held = Vec::new();
            // Hold every accepted socket open until the test ends.
            for _ in 0..2 {
                if let Ok((stream, _)) = listener.accept() {
                    held.push(stream);
                } else {
                    break;
                }
            }
            held
        });
        let config = ClientConfig {
            connect_timeout: Duration::from_millis(200),
            request_timeout: Duration::from_millis(100),
            max_retries: 1,
            backoff_base: Duration::from_millis(1),
            ..ClientConfig::default()
        };
        let client = Client::connect(addr, config).unwrap();
        let err = client
            .request(Query::knn(wazi_geom::Point::new(0.5, 0.5), 1))
            .unwrap_err();
        assert!(
            matches!(&err, NetError::Transport(t) if t.is_transient()),
            "got {err:?}"
        );
        assert_eq!(client.retries(), 1);
        drop(client);
        let _ = sink.join();
    }
}
