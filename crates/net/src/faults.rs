//! Deterministic wire-level fault injection (the transport's chaos
//! harness), extending the `wazi-service` [`FaultPlan`] pattern across the
//! network boundary.
//!
//! A [`WireFaultPlan`] maps *request arrival ordinals* — the order in which
//! the server read request frames off its connections, starting at 0 — to
//! [`WireFault`]s, and the server consults it at five failpoints:
//!
//! * [`WireFault::CorruptFrame`] flips one bit of the encoded response
//!   before it is written, so the client's checksum verification must catch
//!   it and the retry loop must recover.
//! * [`WireFault::TruncateFrame`] writes only the first half of the
//!   response and severs the connection — a crash mid-write.
//! * [`WireFault::StallRead`] sleeps on the connection's reader thread
//!   before the request is submitted — a stalled server stage, for
//!   exercising client request timeouts without holding any lock.
//! * [`WireFault::DropConnection`] severs the connection instead of
//!   responding: the client sees a disconnect and must retry, while the
//!   server's writer must still drain the in-flight ticket (the
//!   no-ticket-left-behind guarantee extended to connections).
//! * [`WireFault::KillWriter`] panics the connection's writer thread while
//!   responses are in flight — the "server killed mid-drain" case. The
//!   server isolates the panic, severs the connection, and drains the
//!   remaining tickets anyway.
//!
//! Plans are explicit ([`WireFaultPlan::new`] + [`WireFaultPlan::with`]) or
//! seeded ([`WireFaultPlan::seeded`]): a splitmix64-derived schedule over
//! the first four kinds, deterministic per seed ([`WireFault::KillWriter`]
//! is only ever injected explicitly, like the service plan's `WorkerKill`).
//! The module is compiled behind the `fault-injection` feature (on by
//! default); without an installed plan every failpoint is one `Option`
//! check.
//!
//! [`FaultPlan`]: wazi_service::FaultPlan

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::util::splitmix64;

/// One injectable wire fault, keyed by the arrival ordinal of the request
/// it poisons. See the module docs for where each kind fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireFault {
    /// Flip one bit of the encoded response frame before writing it.
    CorruptFrame,
    /// Write only the first half of the response, then sever.
    TruncateFrame,
    /// Sleep this long on the reader thread before submitting the request.
    StallRead(Duration),
    /// Sever the connection instead of writing the response.
    DropConnection,
    /// Panic the connection's writer thread while responses are in flight.
    KillWriter,
}

/// A deterministic schedule of wire faults over request arrival ordinals.
///
/// Installed into a server via `ServerBuilder::wire_faults`; shared with
/// every connection thread. The injection counter is an interior-mutable
/// atomic so chaos tests can assert how many faults actually fired.
#[derive(Debug, Default)]
pub struct WireFaultPlan {
    faults: BTreeMap<u64, WireFault>,
    injected: AtomicU64,
}

impl WireFaultPlan {
    /// An empty plan (no faults; every failpoint is a no-op).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) the fault for request ordinal `ordinal`.
    pub fn with(mut self, ordinal: u64, fault: WireFault) -> Self {
        self.faults.insert(ordinal, fault);
        self
    }

    /// A seeded plan: `count` faults spread deterministically over the
    /// first `n_requests` arrival ordinals, cycling through corruption,
    /// truncation, read stalls and dropped connections
    /// ([`WireFault::KillWriter`] is only ever injected explicitly).
    /// Equal seeds give equal plans.
    pub fn seeded(seed: u64, n_requests: u64, count: usize) -> Self {
        let mut plan = WireFaultPlan::new();
        if n_requests == 0 {
            return plan;
        }
        let mut state = seed ^ 0x01BE_FA17_57A1_1C0D;
        let mut placed = 0usize;
        while placed < count && (plan.faults.len() as u64) < n_requests {
            let ordinal = splitmix64(&mut state) % n_requests;
            if plan.faults.contains_key(&ordinal) {
                continue;
            }
            let fault = match placed % 4 {
                0 => WireFault::CorruptFrame,
                1 => WireFault::TruncateFrame,
                2 => {
                    WireFault::StallRead(Duration::from_micros(200 + splitmix64(&mut state) % 800))
                }
                _ => WireFault::DropConnection,
            };
            plan.faults.insert(ordinal, fault);
            placed += 1;
        }
        plan
    }

    /// The fault planned for request ordinal `ordinal`, if any.
    pub fn fault_for(&self, ordinal: u64) -> Option<WireFault> {
        self.faults.get(&ordinal).copied()
    }

    /// The planned (ordinal, fault) pairs in ordinal order.
    pub fn schedule(&self) -> impl Iterator<Item = (u64, WireFault)> + '_ {
        self.faults
            .iter()
            .map(|(&ordinal, &fault)| (ordinal, fault))
    }

    /// How many faults have fired so far (all kinds).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Records one fired fault (called by the server's failpoints).
    pub(crate) fn record(&self) {
        self.injected.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_bounded() {
        let a = WireFaultPlan::seeded(42, 100, 12);
        let b = WireFaultPlan::seeded(42, 100, 12);
        assert_eq!(
            a.schedule().collect::<Vec<_>>(),
            b.schedule().collect::<Vec<_>>()
        );
        assert_eq!(a.schedule().count(), 12);
        assert!(a.schedule().all(|(ordinal, _)| ordinal < 100));
        // All four seedable kinds appear; KillWriter never does.
        assert!(a.schedule().any(|(_, f)| f == WireFault::CorruptFrame));
        assert!(a.schedule().any(|(_, f)| f == WireFault::TruncateFrame));
        assert!(a
            .schedule()
            .any(|(_, f)| matches!(f, WireFault::StallRead(_))));
        assert!(a.schedule().any(|(_, f)| f == WireFault::DropConnection));
        assert!(a.schedule().all(|(_, f)| f != WireFault::KillWriter));
    }

    #[test]
    fn different_seeds_differ() {
        let a = WireFaultPlan::seeded(1, 1_000, 8);
        let b = WireFaultPlan::seeded(2, 1_000, 8);
        assert_ne!(
            a.schedule().collect::<Vec<_>>(),
            b.schedule().collect::<Vec<_>>()
        );
    }

    #[test]
    fn degenerate_plans_are_safe() {
        assert_eq!(WireFaultPlan::seeded(7, 0, 5).schedule().count(), 0);
        assert_eq!(WireFaultPlan::seeded(7, 3, 100).schedule().count(), 3);
        assert_eq!(WireFaultPlan::new().fault_for(0), None);
    }

    #[test]
    fn explicit_plans_register_and_count() {
        let plan = WireFaultPlan::new()
            .with(2, WireFault::KillWriter)
            .with(5, WireFault::DropConnection);
        assert_eq!(plan.fault_for(2), Some(WireFault::KillWriter));
        assert_eq!(plan.fault_for(5), Some(WireFault::DropConnection));
        assert_eq!(plan.fault_for(3), None);
        assert_eq!(plan.injected(), 0);
        plan.record();
        assert_eq!(plan.injected(), 1);
    }
}
