//! The wire protocol: length-prefixed, checksummed binary framing for the
//! service's request/response vocabulary.
//!
//! ## Frame layout
//!
//! ```text
//! offset  size  field
//! 0       2     magic  "WZ" (0x57 0x5A)
//! 2       1     version (currently 1)
//! 3       1     frame kind (1 request, 2 response, 3 error, 4 rejected)
//! 4       8     request id (little-endian u64, chosen by the client)
//! 12      4     payload length (little-endian u32)
//! 16      n     payload (kind-specific encoding, see below)
//! 16+n    8     FNV-1a-64 checksum over header + payload (little-endian)
//! ```
//!
//! Everything is little-endian; floats travel as their IEEE-754 bit
//! patterns ([`f64::to_bits`]), so every value — including NaN payloads —
//! roundtrips bit-exactly. The codec is hand-rolled over `std` in the
//! spirit of the vendored no-dependency crates.
//!
//! ## Robustness contract
//!
//! Decoding **never panics and never over-allocates**, no matter the
//! input:
//!
//! * the payload length is validated against the receiver's cap *before*
//!   any allocation ([`TransportError::FrameTooLarge`]);
//! * every internal length field (strings, point vectors) is checked
//!   against the bytes actually remaining before a buffer is reserved;
//! * the checksum is verified before the payload is interpreted, so a
//!   flipped bit anywhere in the frame surfaces as
//!   [`TransportError::ChecksumMismatch`], not as a garbage decode;
//! * unknown tags, invalid UTF-8 and trailing bytes are typed
//!   [`TransportError`] values, not aborts.
//!
//! The adversarial half of `tests/codec_robustness.rs` drives exactly this
//! contract: truncation at every byte offset, a bit flip at every position,
//! lying length prefixes.
//!
//! ## Losslessness
//!
//! [`ServiceError`] (with its nested [`EngineError`] and [`IndexError`])
//! serialises losslessly, so a remote caller matches on the *same* typed
//! failure an in-process submitter would see. Both enums are
//! `#[non_exhaustive]`; a variant this codec does not know yet is encoded
//! as a reserved tag carrying its display text, and decoding that tag
//! yields a typed [`TransportError::Protocol`] rather than a silently
//! wrong variant.

use std::io::{Read, Write};
use std::sync::Mutex;
use std::time::Duration;

use wazi_core::{
    ChosenStrategy, CostEstimate, EngineError, IndexError, PartitionDecision, Query, QueryOutput,
    QueryReport, RangeMode, StrategyDecisions,
};
use wazi_geom::{Point, Rect};
use wazi_service::{BatchSummary, QueryResponse, ServiceError, SubmitOptions};
use wazi_storage::ExecStats;

use crate::error::TransportError;

/// Frame magic: the first two bytes of every frame.
pub const MAGIC: [u8; 2] = *b"WZ";
/// Protocol version carried in byte 2 of the header.
pub const VERSION: u8 = 1;
/// Fixed header size in bytes (magic + version + kind + request id + len).
pub const HEADER_LEN: usize = 16;
/// Trailing checksum size in bytes.
pub const CHECKSUM_LEN: usize = 8;
/// Default payload-size cap: generous for any realistic response (a 1 MiB
/// payload holds ~65k result points) while bounding what a malicious
/// length prefix can make the receiver allocate.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 1 << 20;

/// Frame kind tags (byte 3 of the header).
mod kind {
    pub const REQUEST: u8 = 1;
    pub const RESPONSE: u8 = 2;
    pub const ERROR: u8 = 3;
    pub const REJECTED: u8 = 4;
}

/// One decoded protocol frame: a request id plus a typed body.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Client-chosen correlation id echoed back by the server, so a client
    /// can detect a duplicate or stale response after a retry.
    pub request_id: u64,
    /// The typed body.
    pub body: FrameBody,
}

/// The typed body of a [`Frame`].
#[derive(Debug, Clone, PartialEq)]
pub enum FrameBody {
    /// Client → server: execute this query under these options.
    Request {
        /// The query plan.
        query: Query,
        /// Per-submission options (deadline).
        options: SubmitOptions,
    },
    /// Server → client: the query's full [`QueryResponse`], boxed to keep
    /// the enum small (it dwarfs every other variant).
    Response(Box<QueryResponse>),
    /// Server → client: the query (or the frame carrying it) failed.
    Error(WireError),
    /// Server → client: the service shed the query under load — the wire
    /// form of [`wazi_service::Submit::Rejected`], this protocol's "429".
    Rejected,
}

/// Body of an error frame: what went wrong on the server's side of the
/// conversation.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The service answered with a typed error; relayed losslessly.
    Service(ServiceError),
    /// The server could not act on the frame at the transport level (e.g.
    /// a request payload that framed correctly but failed to decode). The
    /// string is the server's diagnosis; the client surfaces it as
    /// [`TransportError::PeerReported`].
    Transport(String),
}

impl Frame {
    /// Convenience constructor for a request frame.
    pub fn request(request_id: u64, query: Query, options: SubmitOptions) -> Self {
        Frame {
            request_id,
            body: FrameBody::Request { query, options },
        }
    }

    /// Encodes the frame into a self-contained byte vector (header,
    /// payload, checksum).
    pub fn encode(&self) -> Vec<u8> {
        let (kind, payload) = encode_body(&self.body);
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(kind);
        bytes.extend_from_slice(&self.request_id.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let sum = checksum(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        bytes
    }

    /// Decodes one complete frame from `bytes` (which must contain exactly
    /// one frame — trailing bytes are a protocol violation).
    pub fn decode(bytes: &[u8], max_payload: u32) -> Result<Frame, TransportError> {
        let header: &[u8; HEADER_LEN] = bytes
            .get(..HEADER_LEN)
            .and_then(|h| h.try_into().ok())
            .ok_or(TransportError::Truncated("frame header"))?;
        let (kind, request_id, payload_len) = parse_header(header, max_payload)?;
        let frame_len = HEADER_LEN + payload_len + CHECKSUM_LEN;
        if bytes.len() < frame_len {
            return Err(TransportError::Truncated("frame payload or checksum"));
        }
        if bytes.len() > frame_len {
            return Err(TransportError::Protocol(format!(
                "{} trailing bytes after the frame",
                bytes.len() - frame_len
            )));
        }
        let declared = u64::from_le_bytes(bytes[frame_len - CHECKSUM_LEN..].try_into().unwrap());
        if checksum(&bytes[..frame_len - CHECKSUM_LEN]) != declared {
            return Err(TransportError::ChecksumMismatch);
        }
        let body = decode_body(kind, &bytes[HEADER_LEN..frame_len - CHECKSUM_LEN])?;
        Ok(Frame { request_id, body })
    }
}

/// Validates a raw header and extracts (kind, request id, payload length).
fn parse_header(
    header: &[u8; HEADER_LEN],
    max_payload: u32,
) -> Result<(u8, u64, usize), TransportError> {
    if header[..2] != MAGIC {
        return Err(TransportError::BadMagic([header[0], header[1]]));
    }
    if header[2] != VERSION {
        return Err(TransportError::BadVersion(header[2]));
    }
    let kind = header[3];
    if !(kind::REQUEST..=kind::REJECTED).contains(&kind) {
        return Err(TransportError::UnknownKind(kind));
    }
    let request_id = u64::from_le_bytes(header[4..12].try_into().unwrap());
    let payload_len = u32::from_le_bytes(header[12..16].try_into().unwrap());
    if payload_len > max_payload {
        return Err(TransportError::FrameTooLarge {
            len: payload_len,
            max: max_payload,
        });
    }
    Ok((kind, request_id, payload_len as usize))
}

/// Writes one frame to `writer` (encode + `write_all` + flush).
pub fn write_frame<W: Write>(writer: &mut W, frame: &Frame) -> Result<(), TransportError> {
    let bytes = frame.encode();
    writer.write_all(&bytes)?;
    writer.flush()?;
    Ok(())
}

/// A frame whose framing (magic, version, kind, length, checksum) has been
/// validated but whose payload has not yet been interpreted.
///
/// The split matters for fault handling: a [`RawFrame`] that fails
/// [`RawFrame::body`] arrived *in sync* — the receiver knows its request id
/// and exactly where the next frame starts, so a server can answer it with
/// a typed error frame and keep the connection, whereas a failure in
/// [`read_raw_frame`] itself means the stream can no longer be trusted.
#[derive(Debug, Clone, PartialEq)]
pub struct RawFrame {
    /// The kind byte (already validated to be a known kind).
    pub kind: u8,
    /// The correlation id from the header.
    pub request_id: u64,
    /// The checksum-verified, not-yet-decoded payload.
    pub payload: Vec<u8>,
}

impl RawFrame {
    /// Decodes the payload into a typed [`FrameBody`].
    pub fn body(&self) -> Result<FrameBody, TransportError> {
        decode_body(self.kind, &self.payload)
    }
}

/// Reads one checksum-verified frame from `reader` without decoding its
/// payload.
///
/// Returns `Ok(None)` on a clean end-of-stream *at a frame boundary* (the
/// peer closed between frames); an EOF in the middle of a frame is
/// [`TransportError::ConnectionLost`]. The payload length is validated
/// against `max_payload` before the payload buffer is allocated.
pub fn read_raw_frame<R: Read>(
    reader: &mut R,
    max_payload: u32,
) -> Result<Option<RawFrame>, TransportError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        match reader.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(TransportError::ConnectionLost),
            Ok(n) => filled += n,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(err.into()),
        }
    }
    let (kind, request_id, payload_len) = parse_header(&header, max_payload)?;
    let mut rest = vec![0u8; payload_len + CHECKSUM_LEN];
    reader.read_exact(&mut rest)?;
    let declared = u64::from_le_bytes(rest[payload_len..].try_into().unwrap());
    let mut sum = checksum_init();
    checksum_update(&mut sum, &header);
    checksum_update(&mut sum, &rest[..payload_len]);
    if sum != declared {
        return Err(TransportError::ChecksumMismatch);
    }
    rest.truncate(payload_len);
    Ok(Some(RawFrame {
        kind,
        request_id,
        payload: rest,
    }))
}

/// Reads and fully decodes one frame from `reader`
/// ([`read_raw_frame`] + [`RawFrame::body`]).
pub fn read_frame<R: Read>(
    reader: &mut R,
    max_payload: u32,
) -> Result<Option<Frame>, TransportError> {
    match read_raw_frame(reader, max_payload)? {
        None => Ok(None),
        Some(raw) => Ok(Some(Frame {
            request_id: raw.request_id,
            body: raw.body()?,
        })),
    }
}

/// FNV-1a 64-bit checksum. Not cryptographic — the threat model is bit rot
/// and framing bugs, not an adversary forging frames — but a single flipped
/// bit anywhere in header or payload changes it.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut sum = checksum_init();
    checksum_update(&mut sum, bytes);
    sum
}

fn checksum_init() -> u64 {
    0xcbf2_9ce4_8422_2325
}

fn checksum_update(sum: &mut u64, bytes: &[u8]) {
    for &byte in bytes {
        *sum ^= u64::from(byte);
        *sum = sum.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

// ---------------------------------------------------------------------------
// Body encodings
// ---------------------------------------------------------------------------

fn encode_body(body: &FrameBody) -> (u8, Vec<u8>) {
    let mut payload = Vec::new();
    match body {
        FrameBody::Request { query, options } => {
            put_query(&mut payload, query);
            put_opt_u64(
                &mut payload,
                options
                    .deadline
                    .map(|d| d.as_nanos().min(u64::MAX as u128) as u64),
            );
            (kind::REQUEST, payload)
        }
        FrameBody::Response(response) => {
            put_response(&mut payload, response);
            (kind::RESPONSE, payload)
        }
        FrameBody::Error(error) => {
            match error {
                WireError::Service(err) => {
                    payload.push(0);
                    put_service_error(&mut payload, err);
                }
                WireError::Transport(message) => {
                    payload.push(1);
                    put_str(&mut payload, message);
                }
            }
            (kind::ERROR, payload)
        }
        FrameBody::Rejected => (kind::REJECTED, payload),
    }
}

fn decode_body(kind: u8, payload: &[u8]) -> Result<FrameBody, TransportError> {
    let mut reader = Reader::new(payload);
    let body = match kind {
        kind::REQUEST => {
            let query = reader.query()?;
            let deadline = reader
                .opt_u64("request deadline")?
                .map(Duration::from_nanos);
            let mut options = SubmitOptions::new();
            options.deadline = deadline;
            FrameBody::Request { query, options }
        }
        kind::RESPONSE => FrameBody::Response(Box::new(reader.response()?)),
        kind::ERROR => match reader.u8("error class")? {
            0 => FrameBody::Error(WireError::Service(reader.service_error()?)),
            1 => FrameBody::Error(WireError::Transport(reader.string("transport message")?)),
            tag => {
                return Err(TransportError::Protocol(format!(
                    "unknown error class tag {tag}"
                )))
            }
        },
        kind::REJECTED => FrameBody::Rejected,
        other => return Err(TransportError::UnknownKind(other)),
    };
    reader.finish()?;
    Ok(body)
}

// --- primitive writers -----------------------------------------------------

fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_usize(out: &mut Vec<u8>, value: usize) {
    put_u64(out, value as u64);
}

fn put_f64(out: &mut Vec<u8>, value: f64) {
    put_u64(out, value.to_bits());
}

fn put_bool(out: &mut Vec<u8>, value: bool) {
    out.push(u8::from(value));
}

fn put_opt_u64(out: &mut Vec<u8>, value: Option<u64>) {
    match value {
        None => out.push(0),
        Some(value) => {
            out.push(1);
            put_u64(out, value);
        }
    }
}

fn put_str(out: &mut Vec<u8>, value: &str) {
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(value.as_bytes());
}

fn put_point(out: &mut Vec<u8>, point: &Point) {
    put_f64(out, point.x);
    put_f64(out, point.y);
}

fn put_points(out: &mut Vec<u8>, points: &[Point]) {
    out.extend_from_slice(&(points.len() as u32).to_le_bytes());
    for point in points {
        put_point(out, point);
    }
}

fn put_query(out: &mut Vec<u8>, query: &Query) {
    match query {
        Query::Range { rect, mode } => {
            out.push(0);
            out.push(match mode {
                RangeMode::Collect => 0,
                RangeMode::Count => 1,
                RangeMode::Stream => 2,
            });
            put_point(out, &rect.lo);
            put_point(out, &rect.hi);
        }
        Query::Point(point) => {
            out.push(1);
            put_point(out, point);
        }
        Query::Knn { q, k } => {
            out.push(2);
            put_point(out, q);
            put_usize(out, *k);
        }
    }
}

fn put_output(out: &mut Vec<u8>, output: &QueryOutput) {
    match output {
        QueryOutput::Points(points) => {
            out.push(0);
            put_points(out, points);
        }
        QueryOutput::Count(count) => {
            out.push(1);
            put_u64(out, *count);
        }
        QueryOutput::Streamed(count) => {
            out.push(2);
            put_u64(out, *count);
        }
        QueryOutput::Found(found) => {
            out.push(3);
            put_bool(out, *found);
        }
        QueryOutput::Neighbors(points) => {
            out.push(4);
            put_points(out, points);
        }
    }
}

fn put_exec_stats(out: &mut Vec<u8>, stats: &ExecStats) {
    put_u64(out, stats.nodes_visited);
    put_u64(out, stats.bbs_checked);
    put_u64(out, stats.pages_scanned);
    put_u64(out, stats.points_scanned);
    put_u64(out, stats.results);
    put_u64(out, stats.leaves_skipped);
    put_u64(out, stats.projection_ns);
    put_u64(out, stats.scan_ns);
}

fn put_report(out: &mut Vec<u8>, report: &QueryReport) {
    put_output(out, &report.output);
    put_exec_stats(out, &report.stats);
    put_u64(out, report.latency_ns);
}

fn put_decision(out: &mut Vec<u8>, decision: &PartitionDecision) {
    put_usize(out, decision.queries);
    match decision.chosen {
        ChosenStrategy::Sequential => out.push(0),
        ChosenStrategy::Fused => out.push(1),
        ChosenStrategy::FusedParallel { shards } => {
            out.push(2);
            put_usize(out, shards);
        }
    }
    match &decision.estimate {
        None => out.push(0),
        Some(estimate) => {
            out.push(1);
            put_u64(out, estimate.sequential_ns);
            put_u64(out, estimate.fused_ns);
            put_opt_u64(out, estimate.fused_parallel_ns);
            put_usize(out, estimate.shards);
        }
    }
    put_u64(out, decision.actual_ns);
}

fn put_opt_decision(out: &mut Vec<u8>, decision: &Option<PartitionDecision>) {
    match decision {
        None => out.push(0),
        Some(decision) => {
            out.push(1);
            put_decision(out, decision);
        }
    }
}

fn put_response(out: &mut Vec<u8>, response: &QueryResponse) {
    put_report(out, &response.report);
    let batch = &response.batch;
    put_usize(out, batch.size);
    put_u64(out, batch.latency_ns);
    put_usize(out, batch.fused_queries);
    put_usize(out, batch.fused_points);
    put_usize(out, batch.fused_knn);
    put_usize(out, batch.shards_used);
    put_exec_stats(out, &batch.shared_stats);
    put_opt_decision(out, &batch.decisions.range);
    put_opt_decision(out, &batch.decisions.point);
    put_opt_decision(out, &batch.decisions.knn);
    put_u64(out, batch.epoch);
    put_bool(out, batch.degraded);
    put_u64(out, response.queue_ns);
    put_u64(out, response.total_ns);
}

fn put_service_error(out: &mut Vec<u8>, error: &ServiceError) {
    match error {
        ServiceError::Engine(err) => {
            out.push(0);
            put_engine_error(out, err);
        }
        ServiceError::Closed => out.push(1),
        ServiceError::WorkerDied => out.push(2),
        ServiceError::ExecutionPanicked { message } => {
            out.push(3);
            put_str(out, message);
        }
        ServiceError::DeadlineExceeded => out.push(4),
        ServiceError::WritesUnsupported => out.push(5),
        // `ServiceError` is #[non_exhaustive]: a future variant this codec
        // does not know travels as the reserved tag with its display text,
        // and decodes to a typed protocol error instead of a wrong variant.
        other => {
            out.push(u8::MAX);
            put_str(out, &other.to_string());
        }
    }
}

fn put_engine_error(out: &mut Vec<u8>, error: &EngineError) {
    match error {
        EngineError::Index(err) => {
            out.push(0);
            match err {
                IndexError::Unsupported(op) => {
                    out.push(0);
                    put_str(out, op);
                }
                IndexError::InvalidInput(msg) => {
                    out.push(1);
                    put_str(out, msg);
                }
                IndexError::UpdateUnsupported { index, op } => {
                    out.push(2);
                    put_str(out, index);
                    put_str(out, op);
                }
                other => {
                    out.push(u8::MAX);
                    put_str(out, &other.to_string());
                }
            }
        }
        EngineError::InvalidQuery(msg) => {
            out.push(1);
            put_str(out, msg);
        }
        EngineError::ExecutionPanicked(msg) => {
            out.push(2);
            put_str(out, msg);
        }
        other => {
            out.push(u8::MAX);
            put_str(out, &other.to_string());
        }
    }
}

// --- the cursor-style reader ----------------------------------------------

/// A bounds-checked cursor over a payload. Every accessor returns a typed
/// error instead of panicking, and every variable-length read validates the
/// declared length against the bytes actually remaining before allocating.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], TransportError> {
        if self.remaining() < n {
            return Err(TransportError::Truncated(context));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, TransportError> {
        Ok(self.take(1, context)?[0])
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, TransportError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().unwrap(),
        ))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, TransportError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().unwrap(),
        ))
    }

    fn usize(&mut self, context: &'static str) -> Result<usize, TransportError> {
        self.u64(context)?
            .try_into()
            .map_err(|_| TransportError::Protocol(format!("{context} does not fit in usize")))
    }

    fn f64(&mut self, context: &'static str) -> Result<f64, TransportError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    fn bool(&mut self, context: &'static str) -> Result<bool, TransportError> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(TransportError::Protocol(format!(
                "invalid boolean byte {other} in {context}"
            ))),
        }
    }

    fn opt_u64(&mut self, context: &'static str) -> Result<Option<u64>, TransportError> {
        match self.u8(context)? {
            0 => Ok(None),
            1 => Ok(Some(self.u64(context)?)),
            other => Err(TransportError::Protocol(format!(
                "invalid option byte {other} in {context}"
            ))),
        }
    }

    fn string(&mut self, context: &'static str) -> Result<String, TransportError> {
        let len = self.u32(context)? as usize;
        // The length check happens before any allocation: a lying prefix
        // costs nothing.
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| TransportError::Protocol(format!("invalid UTF-8 in {context}")))
    }

    fn point(&mut self, context: &'static str) -> Result<Point, TransportError> {
        let x = self.f64(context)?;
        let y = self.f64(context)?;
        Ok(Point::new(x, y))
    }

    fn points(&mut self, context: &'static str) -> Result<Vec<Point>, TransportError> {
        let len = self.u32(context)? as usize;
        // 16 bytes per point: validate against the remaining payload before
        // reserving, so a lying count cannot force an over-allocation.
        if len
            .checked_mul(16)
            .is_none_or(|need| need > self.remaining())
        {
            return Err(TransportError::Truncated(context));
        }
        let mut points = Vec::with_capacity(len);
        for _ in 0..len {
            points.push(self.point(context)?);
        }
        Ok(points)
    }

    fn query(&mut self) -> Result<Query, TransportError> {
        match self.u8("query tag")? {
            0 => {
                let mode = match self.u8("range mode")? {
                    0 => RangeMode::Collect,
                    1 => RangeMode::Count,
                    2 => RangeMode::Stream,
                    other => {
                        return Err(TransportError::Protocol(format!(
                            "unknown range mode {other}"
                        )))
                    }
                };
                let lo = self.point("range rectangle")?;
                let hi = self.point("range rectangle")?;
                // Constructed as a literal: `Rect::new` debug-asserts corner
                // order, and the decoder must stay panic-free on any input.
                // Degenerate geometry is the service's problem to reject,
                // exactly as it is for an in-process submitter.
                Ok(Query::Range {
                    rect: Rect { lo, hi },
                    mode,
                })
            }
            1 => Ok(Query::Point(self.point("point query")?)),
            2 => {
                let q = self.point("knn centre")?;
                let k = self.usize("knn k")?;
                Ok(Query::Knn { q, k })
            }
            other => Err(TransportError::Protocol(format!(
                "unknown query tag {other}"
            ))),
        }
    }

    fn output(&mut self) -> Result<QueryOutput, TransportError> {
        match self.u8("output tag")? {
            0 => Ok(QueryOutput::Points(self.points("output points")?)),
            1 => Ok(QueryOutput::Count(self.u64("output count")?)),
            2 => Ok(QueryOutput::Streamed(self.u64("output streamed")?)),
            3 => Ok(QueryOutput::Found(self.bool("output found")?)),
            4 => Ok(QueryOutput::Neighbors(self.points("output neighbors")?)),
            other => Err(TransportError::Protocol(format!(
                "unknown output tag {other}"
            ))),
        }
    }

    fn exec_stats(&mut self) -> Result<ExecStats, TransportError> {
        Ok(ExecStats {
            nodes_visited: self.u64("exec stats")?,
            bbs_checked: self.u64("exec stats")?,
            pages_scanned: self.u64("exec stats")?,
            points_scanned: self.u64("exec stats")?,
            results: self.u64("exec stats")?,
            leaves_skipped: self.u64("exec stats")?,
            projection_ns: self.u64("exec stats")?,
            scan_ns: self.u64("exec stats")?,
        })
    }

    fn report(&mut self) -> Result<QueryReport, TransportError> {
        Ok(QueryReport {
            output: self.output()?,
            stats: self.exec_stats()?,
            latency_ns: self.u64("report latency")?,
        })
    }

    fn decision(&mut self) -> Result<PartitionDecision, TransportError> {
        let queries = self.usize("decision queries")?;
        let chosen = match self.u8("strategy tag")? {
            0 => ChosenStrategy::Sequential,
            1 => ChosenStrategy::Fused,
            2 => ChosenStrategy::FusedParallel {
                shards: self.usize("strategy shards")?,
            },
            other => {
                return Err(TransportError::Protocol(format!(
                    "unknown strategy tag {other}"
                )))
            }
        };
        let estimate = match self.u8("estimate option")? {
            0 => None,
            1 => Some(CostEstimate {
                sequential_ns: self.u64("estimate")?,
                fused_ns: self.u64("estimate")?,
                fused_parallel_ns: self.opt_u64("estimate")?,
                shards: self.usize("estimate shards")?,
            }),
            other => {
                return Err(TransportError::Protocol(format!(
                    "invalid option byte {other} in estimate"
                )))
            }
        };
        Ok(PartitionDecision {
            queries,
            chosen,
            estimate,
            actual_ns: self.u64("decision actual")?,
        })
    }

    fn opt_decision(&mut self) -> Result<Option<PartitionDecision>, TransportError> {
        match self.u8("decision option")? {
            0 => Ok(None),
            1 => Ok(Some(self.decision()?)),
            other => Err(TransportError::Protocol(format!(
                "invalid option byte {other} in decision"
            ))),
        }
    }

    fn response(&mut self) -> Result<QueryResponse, TransportError> {
        let report = self.report()?;
        let batch = BatchSummary {
            size: self.usize("batch size")?,
            latency_ns: self.u64("batch latency")?,
            fused_queries: self.usize("batch fused queries")?,
            fused_points: self.usize("batch fused points")?,
            fused_knn: self.usize("batch fused knn")?,
            shards_used: self.usize("batch shards")?,
            shared_stats: self.exec_stats()?,
            decisions: StrategyDecisions {
                range: self.opt_decision()?,
                point: self.opt_decision()?,
                knn: self.opt_decision()?,
            },
            epoch: self.u64("batch epoch")?,
            degraded: self.bool("batch degraded")?,
        };
        Ok(QueryResponse {
            report,
            batch,
            queue_ns: self.u64("response queue time")?,
            total_ns: self.u64("response total time")?,
        })
    }

    fn service_error(&mut self) -> Result<ServiceError, TransportError> {
        match self.u8("service error tag")? {
            0 => Ok(ServiceError::Engine(self.engine_error()?)),
            1 => Ok(ServiceError::Closed),
            2 => Ok(ServiceError::WorkerDied),
            3 => Ok(ServiceError::ExecutionPanicked {
                message: self.string("panic message")?,
            }),
            4 => Ok(ServiceError::DeadlineExceeded),
            5 => Ok(ServiceError::WritesUnsupported),
            u8::MAX => {
                let message = self.string("unknown service error")?;
                Err(TransportError::Protocol(format!(
                    "peer sent a service error this version does not know: {message}"
                )))
            }
            other => Err(TransportError::Protocol(format!(
                "unknown service error tag {other}"
            ))),
        }
    }

    fn engine_error(&mut self) -> Result<EngineError, TransportError> {
        match self.u8("engine error tag")? {
            0 => match self.u8("index error tag")? {
                0 => {
                    let op = self.string("unsupported operation")?;
                    Ok(EngineError::Index(IndexError::Unsupported(intern_static(
                        &op,
                    ))))
                }
                1 => Ok(EngineError::Index(IndexError::InvalidInput(
                    self.string("invalid input message")?,
                ))),
                2 => {
                    let index = self.string("update-unsupported index")?;
                    let op = self.string("update-unsupported operation")?;
                    Ok(EngineError::Index(IndexError::UpdateUnsupported {
                        index: intern_static(&index),
                        op: intern_static(&op),
                    }))
                }
                u8::MAX => {
                    let message = self.string("unknown index error")?;
                    Err(TransportError::Protocol(format!(
                        "peer sent an index error this version does not know: {message}"
                    )))
                }
                other => Err(TransportError::Protocol(format!(
                    "unknown index error tag {other}"
                ))),
            },
            1 => Ok(EngineError::InvalidQuery(
                self.string("invalid query message")?,
            )),
            2 => Ok(EngineError::ExecutionPanicked(
                self.string("panic message")?,
            )),
            u8::MAX => {
                let message = self.string("unknown engine error")?;
                Err(TransportError::Protocol(format!(
                    "peer sent an engine error this version does not know: {message}"
                )))
            }
            other => Err(TransportError::Protocol(format!(
                "unknown engine error tag {other}"
            ))),
        }
    }

    /// Asserts the whole payload was consumed (trailing bytes are a
    /// protocol violation, usually a sign of version skew).
    fn finish(self) -> Result<(), TransportError> {
        if self.remaining() > 0 {
            return Err(TransportError::Protocol(format!(
                "{} trailing bytes after the payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Re-interns a decoded `Unsupported` message as a `&'static str` so
/// [`IndexError::Unsupported`] roundtrips losslessly.
///
/// The in-tree message set is tiny and closed, so the known table answers
/// every honest frame without allocating. Unknown messages (a newer peer,
/// or an adversarial frame) are leaked at most [`INTERN_CAP`] times and
/// only up to [`INTERN_MAX_LEN`] bytes each — beyond either bound the
/// decoder substitutes a fixed fallback message rather than letting remote
/// input grow process memory without limit.
fn intern_static(message: &str) -> &'static str {
    const KNOWN: &[&str] = &[
        "insert",
        "delete",
        "insert into an immutable snapshot",
        "delete from an immutable snapshot",
        // Index display names, as carried by `IndexError::UpdateUnsupported`.
        "WaZI",
        "Base",
        "STR",
        "CUR",
        "Flood",
        "QUASII",
        "Zpgm",
        "Scan",
    ];
    /// Most distinct unknown messages ever leaked.
    const INTERN_CAP: usize = 32;
    /// Longest unknown message ever leaked, in bytes.
    const INTERN_MAX_LEN: usize = 256;
    const FALLBACK: &str = "unsupported operation (message table full)";
    if let Some(known) = KNOWN.iter().find(|known| **known == message) {
        return known;
    }
    if message.len() > INTERN_MAX_LEN {
        return FALLBACK;
    }
    static EXTRA: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut extra = EXTRA
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(seen) = extra.iter().find(|seen| **seen == message) {
        return seen;
    }
    if extra.len() >= INTERN_CAP {
        return FALLBACK;
    }
    let leaked: &'static str = Box::leak(message.to_owned().into_boxed_str());
    extra.push(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: &Frame) -> Frame {
        Frame::decode(&frame.encode(), DEFAULT_MAX_FRAME_LEN).expect("roundtrip decode")
    }

    #[test]
    fn request_roundtrips_with_and_without_deadline() {
        let query = Query::range(Rect::from_coords(0.1, 0.2, 0.3, 0.4));
        let frame = Frame::request(7, query.clone(), SubmitOptions::new());
        assert_eq!(roundtrip(&frame), frame);
        let frame = Frame::request(
            8,
            query,
            SubmitOptions::new().deadline(Duration::from_millis(250)),
        );
        assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn nan_coordinates_roundtrip_bit_exactly() {
        let quiet_nan = f64::from_bits(0x7FF8_0000_0000_0001);
        let frame = Frame::request(
            1,
            Query::Point(Point::new(quiet_nan, f64::NEG_INFINITY)),
            SubmitOptions::new(),
        );
        let decoded = roundtrip(&frame);
        match decoded.body {
            FrameBody::Request {
                query: Query::Point(p),
                ..
            } => {
                assert_eq!(p.x.to_bits(), quiet_nan.to_bits());
                assert_eq!(p.y.to_bits(), f64::NEG_INFINITY.to_bits());
            }
            other => panic!("wrong body: {other:?}"),
        }
    }

    #[test]
    fn rejected_frame_is_empty_payload() {
        let frame = Frame {
            request_id: 42,
            body: FrameBody::Rejected,
        };
        let bytes = frame.encode();
        assert_eq!(bytes.len(), HEADER_LEN + CHECKSUM_LEN);
        assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn stream_reader_matches_buffer_decoder_and_detects_clean_eof() {
        let frame = Frame::request(3, Query::knn(Point::new(0.5, 0.5), 4), SubmitOptions::new());
        let bytes = frame.encode();
        let mut cursor = std::io::Cursor::new(bytes.clone());
        let read = read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN)
            .expect("stream decode")
            .expect("one frame");
        assert_eq!(read, frame);
        // Nothing left: a clean EOF at the frame boundary is Ok(None).
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN).unwrap(),
            None
        );
        // EOF in the middle of a frame is ConnectionLost.
        let mut cursor = std::io::Cursor::new(bytes[..10].to_vec());
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN).unwrap_err(),
            TransportError::ConnectionLost
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut bytes = Frame {
            request_id: 0,
            body: FrameBody::Rejected,
        }
        .encode();
        bytes[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        match Frame::decode(&bytes, DEFAULT_MAX_FRAME_LEN) {
            Err(TransportError::FrameTooLarge { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, DEFAULT_MAX_FRAME_LEN);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_message_interning_is_capped() {
        assert_eq!(intern_static("insert"), "insert");
        assert_eq!(intern_static("delete"), "delete");
        let novel = intern_static("compact");
        assert_eq!(novel, "compact");
        // Same unknown message again: same interned pointer, no new leak.
        assert!(std::ptr::eq(
            novel.as_ptr(),
            intern_static("compact").as_ptr()
        ));
        // An absurdly long message falls back instead of leaking.
        let long = "x".repeat(10_000);
        assert!(intern_static(&long).contains("table full"));
    }

    #[test]
    fn service_errors_roundtrip_losslessly() {
        let errors = vec![
            ServiceError::Closed,
            ServiceError::WorkerDied,
            ServiceError::DeadlineExceeded,
            ServiceError::ExecutionPanicked {
                message: "index out of bounds".into(),
            },
            ServiceError::Engine(EngineError::InvalidQuery("non-finite point".into())),
            ServiceError::Engine(EngineError::Index(IndexError::Unsupported("insert"))),
            ServiceError::Engine(EngineError::Index(IndexError::UpdateUnsupported {
                index: "QUASII",
                op: "insert",
            })),
            ServiceError::Engine(EngineError::Index(IndexError::InvalidInput("nan".into()))),
            ServiceError::Engine(EngineError::ExecutionPanicked("boom".into())),
            ServiceError::WritesUnsupported,
        ];
        for error in errors {
            let frame = Frame {
                request_id: 9,
                body: FrameBody::Error(WireError::Service(error.clone())),
            };
            match roundtrip(&frame).body {
                FrameBody::Error(WireError::Service(decoded)) => assert_eq!(decoded, error),
                other => panic!("wrong body: {other:?}"),
            }
        }
    }
}
