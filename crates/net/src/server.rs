//! The TCP server: an acceptor plus per-connection reader/writer threads
//! feeding [`Service::submit_with`], with wire-level fault tolerance.
//!
//! ## Threading model
//!
//! No async runtime — plain threads and channels, matching the service's
//! Mutex/Condvar style:
//!
//! * one **acceptor** thread polls a non-blocking listener and spawns a
//!   connection thread per accepted socket;
//! * each connection runs a **reader** thread (frames → `submit_with` →
//!   an in-order channel of pending outcomes) and a **writer** thread
//!   (redeem each [`Ticket`] in arrival order, encode, write under the
//!   write deadline). Responses on one connection keep request order; the
//!   *service* still coalesces and reorders freely across connections.
//!
//! ## Failure model
//!
//! * **Malformed input never panics the server.** A request whose payload
//!   fails to decode (but framed correctly) is answered with a typed error
//!   frame and the connection keeps serving; a framing violation (bad
//!   magic, checksum mismatch, oversized length) means the stream lost
//!   sync, so the server sends a best-effort error frame and severs — only
//!   that connection.
//! * **Slow clients are severed, not served.** A write that cannot finish
//!   within the write deadline closes that connection; every other client
//!   is unaffected (per-connection threads, no shared write path).
//! * **No ticket left behind, extended to connections.** Whatever closes a
//!   connection — clean EOF, read/write timeout, injected fault, a writer
//!   panic — the writer's close path redeems every in-flight ticket before
//!   the connection is released, so service accounting stays exact. The
//!   [`ServiceStats::connections_opened`]/`severed`/`drained` counters
//!   audit exactly this.
//! * **Graceful drain on shutdown.** [`Server::shutdown`] stops accepting,
//!   refuses new submissions ([`Service::begin_shutdown`]), unblocks every
//!   reader, lets every writer flush its in-flight responses, joins all
//!   connection threads, and only then shuts the service itself down.
//!
//! [`ServiceStats::connections_opened`]: wazi_service::ServiceStats::connections_opened

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use wazi_service::{Service, ServiceError, ServiceStats, Submit, Ticket};

#[cfg(feature = "fault-injection")]
use crate::faults::{WireFault, WireFaultPlan};
use crate::wire::{read_raw_frame, Frame, FrameBody, WireError, DEFAULT_MAX_FRAME_LEN};

/// Tuning knobs of a [`Server`]; set via [`ServerBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Per-connection read deadline: a connection that sends no frame for
    /// this long is severed. Bounds how long an abandoned socket can hold
    /// a connection thread.
    pub read_timeout: Duration,
    /// Per-connection write deadline: a response write that cannot finish
    /// within it severs the connection (the slow-client guard).
    pub write_timeout: Duration,
    /// Payload-size cap applied to incoming frames before any allocation.
    pub max_frame_len: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(2),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        }
    }
}

/// Builder-style front end for a [`Server`]; construct with
/// [`Server::builder`], finish with [`ServerBuilder::bind`].
pub struct ServerBuilder {
    service: Service,
    config: ServerConfig,
    #[cfg(feature = "fault-injection")]
    wire_faults: Option<Arc<WireFaultPlan>>,
}

impl std::fmt::Debug for ServerBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerBuilder")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl ServerBuilder {
    /// Sets the per-connection read deadline.
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.config.read_timeout = timeout;
        self
    }

    /// Sets the per-connection write deadline (the slow-client guard).
    pub fn write_timeout(mut self, timeout: Duration) -> Self {
        self.config.write_timeout = timeout;
        self
    }

    /// Sets the incoming payload-size cap.
    pub fn max_frame_len(mut self, max: u32) -> Self {
        self.config.max_frame_len = max;
        self
    }

    /// Installs a deterministic wire fault plan (the transport chaos
    /// harness): faults fire at the planned request arrival ordinals. See
    /// [`crate::faults`].
    #[cfg(feature = "fault-injection")]
    pub fn wire_faults(mut self, plan: Arc<WireFaultPlan>) -> Self {
        self.wire_faults = Some(plan);
        self
    }

    /// Binds the listener, starts the acceptor, and returns the running
    /// server. Bind to port 0 to let the OS pick ([`Server::local_addr`]
    /// reports the choice).
    pub fn bind(self, addr: impl ToSocketAddrs) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        // Non-blocking accept, polled: the acceptor must observe the stop
        // flag promptly even when no client ever connects.
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            service: self.service,
            config: self.config,
            stop: AtomicBool::new(false),
            next_conn_id: AtomicU64::new(0),
            request_ordinal: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            #[cfg(feature = "fault-injection")]
            wire_faults: self.wire_faults,
        });
        let conn_handles = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let inner = Arc::clone(&inner);
            let conn_handles = Arc::clone(&conn_handles);
            std::thread::Builder::new()
                .name("wazi-net-acceptor".into())
                .spawn(move || acceptor_loop(&inner, &listener, &conn_handles))
                .expect("spawn acceptor thread")
        };
        Ok(Server {
            inner,
            local_addr,
            acceptor: Some(acceptor),
            conn_handles,
        })
    }
}

/// State shared by the server handle, the acceptor, and every connection
/// thread.
struct Inner {
    service: Service,
    config: ServerConfig,
    stop: AtomicBool,
    next_conn_id: AtomicU64,
    /// Global request arrival counter — the ordinal space wire fault plans
    /// speak in.
    request_ordinal: AtomicU64,
    /// Live connection sockets (clones), so shutdown can unblock every
    /// reader with `Shutdown::Read`. Entries remove themselves on close.
    conns: Mutex<HashMap<u64, TcpStream>>,
    #[cfg(feature = "fault-injection")]
    wire_faults: Option<Arc<WireFaultPlan>>,
}

/// A TCP front end serving one [`Service`] — see the module docs for the
/// threading and failure model.
///
/// The wire changes transport, never answers: responses routed through this
/// server are bit-identical to in-process [`Service::submit`] of the same
/// queries (asserted across every overview index by the facade test-suite).
pub struct Server {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Starts building a server over `service` (taking ownership: the
    /// server becomes the service's front end and shuts it down as the
    /// last step of [`Server::shutdown`]).
    pub fn builder(service: Service) -> ServerBuilder {
        ServerBuilder {
            service,
            config: ServerConfig::default(),
            #[cfg(feature = "fault-injection")]
            wire_faults: None,
        }
    }

    /// Binds with default configuration ([`Server::builder`] for knobs).
    pub fn bind(service: Service, addr: impl ToSocketAddrs) -> io::Result<Server> {
        Server::builder(service).bind(addr)
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The served service — for stats probes and for in-process submission
    /// alongside the wire (how the bit-identity tests compare transports).
    pub fn service(&self) -> &Service {
        &self.inner.service
    }

    /// Snapshots the service counters (queries *and* connections).
    pub fn stats(&self) -> ServiceStats {
        self.inner.service.stats()
    }

    /// Graceful drain: stop accepting, refuse new submissions, flush every
    /// in-flight response, close every connection, then shut the service
    /// itself down. Returns the final counters. Never hangs: readers are
    /// unblocked explicitly and every ticket resolves by the service's own
    /// guarantee.
    pub fn shutdown(self) -> ServiceStats {
        let inner = Arc::clone(&self.inner);
        // Dropping the handle runs the full stop sequence and joins every
        // thread, after which ours is the only Arc left.
        drop(self);
        match Arc::try_unwrap(inner) {
            Ok(inner) => inner.service.shutdown(),
            // Unreachable in practice (all holders were joined); degrade to
            // a snapshot rather than panicking in a shutdown path.
            Err(inner) => {
                inner.service.begin_shutdown();
                inner.service.stats()
            }
        }
    }

    fn stop_all(&mut self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Refuse new submissions; queries already accepted keep executing
        // and their responses still flow out through the writers.
        self.inner.service.begin_shutdown();
        // Unblock every reader: a half-shutdown surfaces as a clean EOF at
        // the next frame boundary, which is the reader's signal to close
        // its connection after the writer flushes.
        {
            let conns = lock(&self.inner.conns);
            for stream in conns.values() {
                let _ = stream.shutdown(Shutdown::Read);
            }
        }
        let handles: Vec<JoinHandle<()>> = lock(&self.conn_handles).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_all();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("config", &self.inner.config)
            .finish_non_exhaustive()
    }
}

/// Poison-resistant lock helper: a panicking connection thread must never
/// wedge the acceptor or shutdown.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

fn acceptor_loop(
    inner: &Arc<Inner>,
    listener: &TcpListener,
    conn_handles: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !inner.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(inner.config.read_timeout));
                let _ = stream.set_write_timeout(Some(inner.config.write_timeout));
                let conn_id = inner.next_conn_id.fetch_add(1, Ordering::Relaxed);
                if let Ok(clone) = stream.try_clone() {
                    lock(&inner.conns).insert(conn_id, clone);
                }
                inner.service.note_connection_opened();
                let handle = {
                    let inner = Arc::clone(inner);
                    std::thread::Builder::new()
                        .name(format!("wazi-net-conn-{conn_id}"))
                        .spawn(move || connection_loop(&inner, conn_id, stream))
                        .expect("spawn connection thread")
                };
                let mut handles = lock(conn_handles);
                // Reap finished connections so a long-lived server does not
                // accumulate one JoinHandle per connection ever served.
                let mut live = Vec::with_capacity(handles.len() + 1);
                for old in handles.drain(..) {
                    if old.is_finished() {
                        let _ = old.join();
                    } else {
                        live.push(old);
                    }
                }
                live.push(handle);
                *handles = live;
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// What the reader hands the writer for one received frame, in arrival
/// order.
struct Envelope {
    request_id: u64,
    /// Global arrival ordinal — the wire fault plan's key space.
    #[cfg_attr(not(feature = "fault-injection"), allow(dead_code))]
    ordinal: u64,
    outcome: Outcome,
}

enum Outcome {
    /// Accepted: redeem for the response (or a typed service error).
    Ticket(Ticket),
    /// Shed under load: becomes the wire-level `Rejected` frame.
    Rejected,
    /// Refused by the service at submission time.
    Service(ServiceError),
    /// The frame itself was unusable; report the diagnosis.
    Transport(String),
}

/// One connection, start to finish: spawn the writer, pump requests into
/// the service, join the writer, account the close.
fn connection_loop(inner: &Arc<Inner>, conn_id: u64, mut stream: TcpStream) {
    let severed = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<Envelope>();
    let writer = stream.try_clone().ok().map(|write_half| {
        let inner = Arc::clone(inner);
        let severed = Arc::clone(&severed);
        std::thread::Builder::new()
            .name(format!("wazi-net-write-{conn_id}"))
            .spawn(move || writer_loop(&inner, write_half, &rx, &severed))
            .expect("spawn connection writer thread")
    });
    if writer.is_none() {
        // Could not clone the socket: nothing was submitted yet, so there
        // is nothing to drain — sever immediately.
        severed.store(true, Ordering::Relaxed);
    } else {
        reader_loop(inner, &mut stream, &tx, &severed);
    }
    // Close the reader's half and hand the channel to the writer's drain.
    drop(tx);
    if let Some(writer) = writer {
        let _ = writer.join();
    }
    let _ = stream.shutdown(Shutdown::Both);
    lock(&inner.conns).remove(&conn_id);
    if severed.load(Ordering::Relaxed) {
        inner.service.note_connection_severed();
    }
    // The writer's close path redeemed every in-flight ticket (or none
    // existed): the connection drained, however it ended.
    inner.service.note_connection_drained();
}

/// Pumps frames off the socket into the service until EOF, a fault, or a
/// framing violation.
fn reader_loop(
    inner: &Arc<Inner>,
    stream: &mut TcpStream,
    tx: &mpsc::Sender<Envelope>,
    severed: &AtomicBool,
) {
    loop {
        match read_raw_frame(stream, inner.config.max_frame_len) {
            // Clean EOF at a frame boundary: the client closed (or shutdown
            // half-closed the socket). Not a sever.
            Ok(None) => return,
            Ok(Some(raw)) => {
                let ordinal = inner.request_ordinal.fetch_add(1, Ordering::Relaxed);
                #[cfg(feature = "fault-injection")]
                let drop_connection = match planned_fault(inner, ordinal) {
                    Some(WireFault::StallRead(delay)) => {
                        std::thread::sleep(delay);
                        false
                    }
                    Some(WireFault::DropConnection) => true,
                    _ => false,
                };
                #[cfg(not(feature = "fault-injection"))]
                let drop_connection = false;
                let outcome = match raw.body() {
                    Ok(FrameBody::Request { query, options }) => {
                        match inner.service.submit_with(query, options) {
                            Ok(Submit::Accepted(ticket)) => Outcome::Ticket(ticket),
                            Ok(Submit::Rejected) => Outcome::Rejected,
                            Err(err) => Outcome::Service(err),
                        }
                    }
                    Ok(_) => {
                        // A client sending server-side frame kinds is not
                        // speaking the protocol; answer and sever.
                        let _ = tx.send(Envelope {
                            request_id: raw.request_id,
                            ordinal,
                            outcome: Outcome::Transport(
                                "unexpected frame kind from a client".into(),
                            ),
                        });
                        severed.store(true, Ordering::Relaxed);
                        return;
                    }
                    // The frame was in sync (framing + checksum passed) but
                    // the payload is malformed: typed error frame, keep the
                    // connection serving.
                    Err(err) => Outcome::Transport(err.to_string()),
                };
                if drop_connection {
                    // Injected fault: sever *before* the writer can answer,
                    // so the client observes a lost connection and the
                    // writer must drain the in-flight ticket.
                    severed.store(true, Ordering::Relaxed);
                    let _ = stream.shutdown(Shutdown::Both);
                    let _ = tx.send(Envelope {
                        request_id: raw.request_id,
                        ordinal,
                        outcome,
                    });
                    return;
                }
                if tx
                    .send(Envelope {
                        request_id: raw.request_id,
                        ordinal,
                        outcome,
                    })
                    .is_err()
                {
                    // Writer already gone (severed on its side).
                    return;
                }
            }
            Err(err) => {
                // Read deadline, lost connection, or a framing violation:
                // the stream can no longer be trusted. Best-effort typed
                // error frame (the writer may already be unable to send
                // it), then sever.
                severed.store(true, Ordering::Relaxed);
                let _ = tx.send(Envelope {
                    request_id: 0,
                    ordinal: u64::MAX,
                    outcome: Outcome::Transport(err.to_string()),
                });
                return;
            }
        }
    }
}

/// Redeems outcomes in arrival order and writes response frames; on any
/// exit path — clean, severed, or a panic (injected or otherwise) — drains
/// every remaining ticket before returning.
fn writer_loop(
    inner: &Arc<Inner>,
    mut stream: TcpStream,
    rx: &mpsc::Receiver<Envelope>,
    severed: &AtomicBool,
) {
    let caught = catch_unwind(AssertUnwindSafe(|| {
        pump_responses(inner, &mut stream, rx, severed)
    }));
    if caught.is_err() {
        // The writer panicked mid-drain (the KillWriter fault, or a bug):
        // isolate it, sever the connection, and fall through to the drain
        // below — the panic must not leak tickets.
        severed.store(true, Ordering::Relaxed);
        let _ = stream.shutdown(Shutdown::Both);
    }
    // No ticket left behind: the reader may still push a few envelopes
    // until it notices the severed socket; redeem and drop every one. The
    // loop ends when the reader drops its sender.
    for envelope in rx.iter() {
        if let Outcome::Ticket(ticket) = envelope.outcome {
            let _ = ticket.wait();
        }
    }
}

fn pump_responses(
    inner: &Arc<Inner>,
    stream: &mut TcpStream,
    rx: &mpsc::Receiver<Envelope>,
    severed: &AtomicBool,
) {
    for envelope in rx.iter() {
        #[cfg(feature = "fault-injection")]
        let fault = planned_write_fault(inner, envelope.ordinal);
        #[cfg(feature = "fault-injection")]
        if fault == Some(WireFault::KillWriter) {
            panic!("injected writer kill (wire fault plan, request #{})", {
                envelope.ordinal
            });
        }
        let frame = resolve(envelope);
        let mut bytes = frame.encode();
        #[cfg(feature = "fault-injection")]
        match fault {
            Some(WireFault::CorruptFrame) => {
                // Flip a checksum bit: the frame still parses, the checksum
                // verification must catch it, and the stream stays in sync
                // for a deterministic client-side ChecksumMismatch.
                let last = bytes.len() - 1;
                bytes[last] ^= 0x01;
            }
            Some(WireFault::TruncateFrame) => {
                // A crash mid-write: half the frame, then a dead socket.
                let half = bytes.len() / 2;
                let _ = std::io::Write::write_all(stream, &bytes[..half]);
                let _ = std::io::Write::flush(stream);
                severed.store(true, Ordering::Relaxed);
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            _ => {}
        }
        if std::io::Write::write_all(stream, &bytes)
            .and_then(|()| std::io::Write::flush(stream))
            .is_err()
        {
            // Write deadline or dead socket: the slow-client guard. Sever
            // this connection; the remaining tickets drain in the caller.
            severed.store(true, Ordering::Relaxed);
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    }
}

/// Turns one pending outcome into the frame the client receives. Blocks on
/// [`Ticket::wait`] — safe, because every ticket resolves by the service's
/// no-ticket-left-behind guarantee.
fn resolve(envelope: Envelope) -> Frame {
    let body = match envelope.outcome {
        Outcome::Ticket(ticket) => match ticket.wait() {
            Ok(response) => FrameBody::Response(Box::new(response)),
            Err(err) => FrameBody::Error(WireError::Service(err)),
        },
        Outcome::Rejected => FrameBody::Rejected,
        Outcome::Service(err) => FrameBody::Error(WireError::Service(err)),
        Outcome::Transport(message) => FrameBody::Error(WireError::Transport(message)),
    };
    Frame {
        request_id: envelope.request_id,
        body,
    }
}

/// Looks up (and records) the fault planned for a request ordinal, from the
/// reader's failpoints.
#[cfg(feature = "fault-injection")]
fn planned_fault(inner: &Inner, ordinal: u64) -> Option<WireFault> {
    let plan = inner.wire_faults.as_ref()?;
    let fault = plan.fault_for(ordinal)?;
    match fault {
        WireFault::StallRead(_) | WireFault::DropConnection => {
            plan.record();
            Some(fault)
        }
        // Writer-side faults are recorded at the writer's failpoint.
        _ => None,
    }
}

/// Looks up (and records) the fault planned for a response ordinal, from
/// the writer's failpoints.
#[cfg(feature = "fault-injection")]
fn planned_write_fault(inner: &Inner, ordinal: u64) -> Option<WireFault> {
    let plan = inner.wire_faults.as_ref()?;
    let fault = plan.fault_for(ordinal)?;
    match fault {
        WireFault::CorruptFrame | WireFault::TruncateFrame | WireFault::KillWriter => {
            plan.record();
            Some(fault)
        }
        _ => None,
    }
}
