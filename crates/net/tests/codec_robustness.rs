//! Adversarial codec tests: the wire decoder's robustness contract.
//!
//! Two halves:
//!
//! * **Losslessness** — every `Query`, `QueryOutput`, and `ServiceError`
//!   shape roundtrips through a full frame bit-exactly.
//! * **Hostility** — truncation at every byte offset, a bit flip at every
//!   byte, lying length prefixes (outer and internal): the decoder returns
//!   a typed [`TransportError`], never panics, and never allocates a
//!   buffer an unvalidated length asked for.

use std::time::Duration;

use wazi_core::{
    ChosenStrategy, CostEstimate, EngineError, IndexError, PartitionDecision, Query, QueryOutput,
    QueryReport, StrategyDecisions,
};
use wazi_geom::{Point, Rect};
use wazi_net::wire::{
    checksum, read_raw_frame, CHECKSUM_LEN, DEFAULT_MAX_FRAME_LEN, HEADER_LEN, MAGIC, VERSION,
};
use wazi_net::{Frame, FrameBody, TransportError, WireError};
use wazi_service::{BatchSummary, QueryResponse, ServiceError, SubmitOptions};
use wazi_storage::ExecStats;

fn roundtrip(frame: &Frame) -> Frame {
    let bytes = frame.encode();
    Frame::decode(&bytes, DEFAULT_MAX_FRAME_LEN).expect("roundtrip decode")
}

fn every_query() -> Vec<Query> {
    vec![
        Query::range(Rect::from_coords(0.1, 0.2, 0.7, 0.9)),
        Query::range_count(Rect::from_coords(0.0, 0.0, 1.0, 1.0)),
        Query::range_stream(Rect::from_coords(0.25, 0.25, 0.5, 0.5)),
        Query::point(Point::new(0.125, 0.875)),
        Query::knn(Point::new(0.5, 0.5), 17),
    ]
}

fn sample_stats() -> ExecStats {
    ExecStats {
        nodes_visited: 12,
        bbs_checked: 34,
        pages_scanned: 5,
        points_scanned: 678,
        results: 9,
        leaves_skipped: 2,
        projection_ns: 1_234,
        scan_ns: 56_789,
    }
}

fn response_with(output: QueryOutput) -> QueryResponse {
    QueryResponse {
        report: QueryReport {
            output,
            stats: sample_stats(),
            latency_ns: 42_000,
        },
        batch: BatchSummary {
            size: 7,
            latency_ns: 90_000,
            fused_queries: 5,
            fused_points: 1,
            fused_knn: 1,
            shards_used: 2,
            shared_stats: sample_stats(),
            decisions: StrategyDecisions {
                range: Some(PartitionDecision {
                    queries: 5,
                    chosen: ChosenStrategy::FusedParallel { shards: 2 },
                    estimate: Some(CostEstimate {
                        sequential_ns: 100,
                        fused_ns: 60,
                        fused_parallel_ns: Some(40),
                        shards: 2,
                    }),
                    actual_ns: 45,
                }),
                point: Some(PartitionDecision {
                    queries: 1,
                    chosen: ChosenStrategy::Sequential,
                    estimate: None,
                    actual_ns: 5,
                }),
                knn: Some(PartitionDecision {
                    queries: 1,
                    chosen: ChosenStrategy::Fused,
                    estimate: Some(CostEstimate {
                        sequential_ns: 10,
                        fused_ns: 8,
                        fused_parallel_ns: None,
                        shards: 1,
                    }),
                    actual_ns: 9,
                }),
            },
            epoch: 3,
            degraded: true,
        },
        queue_ns: 11_000,
        total_ns: 101_000,
    }
}

fn every_output() -> Vec<QueryOutput> {
    vec![
        QueryOutput::Points(vec![Point::new(0.1, 0.2), Point::new(0.3, 0.4)]),
        QueryOutput::Points(Vec::new()),
        QueryOutput::Count(123_456),
        QueryOutput::Streamed(7),
        QueryOutput::Found(true),
        QueryOutput::Found(false),
        QueryOutput::Neighbors(vec![Point::new(0.5, 0.5)]),
    ]
}

fn every_service_error() -> Vec<ServiceError> {
    vec![
        ServiceError::Engine(EngineError::Index(IndexError::Unsupported("insert"))),
        ServiceError::Engine(EngineError::Index(IndexError::UpdateUnsupported {
            index: "Flood",
            op: "delete",
        })),
        ServiceError::Engine(EngineError::Index(IndexError::InvalidInput(
            "page size must be positive".into(),
        ))),
        ServiceError::Engine(EngineError::InvalidQuery("empty rectangle".into())),
        ServiceError::Engine(EngineError::ExecutionPanicked("oom in kernel".into())),
        ServiceError::Closed,
        ServiceError::WorkerDied,
        ServiceError::ExecutionPanicked {
            message: "kernel overflow".into(),
        },
        ServiceError::DeadlineExceeded,
        ServiceError::WritesUnsupported,
    ]
}

#[test]
fn every_query_shape_roundtrips() {
    for query in every_query() {
        for options in [
            SubmitOptions::new(),
            SubmitOptions::new().deadline(Duration::from_micros(1_500)),
        ] {
            let frame = Frame::request(99, query.clone(), options);
            assert_eq!(roundtrip(&frame), frame, "query {query:?}");
        }
    }
}

#[test]
fn every_output_shape_roundtrips_inside_a_full_response() {
    for output in every_output() {
        let frame = Frame {
            request_id: u64::MAX,
            body: FrameBody::Response(Box::new(response_with(output.clone()))),
        };
        assert_eq!(roundtrip(&frame), frame, "output {output:?}");
    }
}

#[test]
fn every_service_error_shape_roundtrips() {
    for err in every_service_error() {
        let frame = Frame {
            request_id: 3,
            body: FrameBody::Error(WireError::Service(err.clone())),
        };
        assert_eq!(roundtrip(&frame), frame, "error {err:?}");
    }
    let transport = Frame {
        request_id: 4,
        body: FrameBody::Error(WireError::Transport("bad tag 200".into())),
    };
    assert_eq!(roundtrip(&transport), transport);
    let rejected = Frame {
        request_id: 5,
        body: FrameBody::Rejected,
    };
    assert_eq!(roundtrip(&rejected), rejected);
}

/// A representative corpus spanning every frame kind and payload encoder.
fn corpus() -> Vec<Frame> {
    let mut frames: Vec<Frame> = every_query()
        .into_iter()
        .map(|q| {
            Frame::request(
                1,
                q,
                SubmitOptions::new().deadline(Duration::from_millis(2)),
            )
        })
        .collect();
    frames.extend(every_output().into_iter().map(|output| Frame {
        request_id: 2,
        body: FrameBody::Response(Box::new(response_with(output))),
    }));
    frames.extend(every_service_error().into_iter().map(|err| Frame {
        request_id: 3,
        body: FrameBody::Error(WireError::Service(err)),
    }));
    frames.push(Frame {
        request_id: 4,
        body: FrameBody::Rejected,
    });
    frames
}

#[test]
fn truncation_at_every_byte_offset_is_a_typed_error() {
    for frame in corpus() {
        let bytes = frame.encode();
        for cut in 0..bytes.len() {
            let err = Frame::decode(&bytes[..cut], DEFAULT_MAX_FRAME_LEN)
                .expect_err("truncated frame must not decode");
            assert!(
                matches!(
                    err,
                    TransportError::Truncated(_)
                        | TransportError::BadMagic(_)
                        | TransportError::BadVersion(_)
                ),
                "cut at {cut}/{} gave {err:?}",
                bytes.len()
            );
        }
    }
}

#[test]
fn truncated_streams_are_a_lost_connection_not_a_hang() {
    for frame in corpus() {
        let bytes = frame.encode();
        // Every non-empty prefix: mid-frame EOF must be ConnectionLost;
        // only the empty prefix is a clean end-of-stream.
        for cut in [1, HEADER_LEN - 1, HEADER_LEN, bytes.len() - 1] {
            let mut cursor = std::io::Cursor::new(&bytes[..cut]);
            let err = read_raw_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN)
                .expect_err("mid-frame EOF must error");
            assert_eq!(err, TransportError::ConnectionLost, "cut at {cut}");
        }
        let mut empty = std::io::Cursor::new(&[][..]);
        assert_eq!(
            read_raw_frame(&mut empty, DEFAULT_MAX_FRAME_LEN).unwrap(),
            None
        );
    }
}

#[test]
fn a_single_bit_flip_anywhere_is_caught() {
    for frame in corpus() {
        let bytes = frame.encode();
        for offset in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[offset] ^= 0x10;
            let result = Frame::decode(&corrupted, DEFAULT_MAX_FRAME_LEN);
            let err = match result {
                Err(err) => err,
                Ok(decoded) => {
                    panic!("flip at byte {offset} decoded as {decoded:?} (original {frame:?})")
                }
            };
            // Flips past the header can only be caught by the checksum.
            if offset >= HEADER_LEN && offset < bytes.len() - CHECKSUM_LEN {
                assert_eq!(
                    err,
                    TransportError::ChecksumMismatch,
                    "payload flip at {offset}"
                );
            }
        }
    }
}

#[test]
fn oversized_length_prefix_is_refused_before_allocation() {
    // A header declaring a payload absurdly larger than the cap: the typed
    // refusal must carry the declared length, and arrive without the
    // decoder ever allocating the buffer (the frame has no such bytes).
    let mut header = Vec::new();
    header.extend_from_slice(&MAGIC);
    header.push(VERSION);
    header.push(1); // request
    header.extend_from_slice(&7u64.to_le_bytes());
    header.extend_from_slice(&u32::MAX.to_le_bytes());
    let err = Frame::decode(&header, 1024).expect_err("oversized frame must not decode");
    assert_eq!(
        err,
        TransportError::FrameTooLarge {
            len: u32::MAX,
            max: 1024
        }
    );
    // Same through the stream reader: only the 16 header bytes are read.
    let mut cursor = std::io::Cursor::new(header.clone());
    let err = read_raw_frame(&mut cursor, 1024).expect_err("oversized frame must not stream");
    assert!(matches!(err, TransportError::FrameTooLarge { .. }));
    assert_eq!(cursor.position(), HEADER_LEN as u64);
}

#[test]
fn lying_internal_point_count_is_truncation_not_allocation() {
    // Take a valid Response frame carrying a point vector, inflate the
    // vector's internal count field, and re-seal the checksum so only the
    // *internal* length lies. The decoder must report truncation — it
    // validates the count against the bytes remaining before reserving.
    let frame = Frame {
        request_id: 8,
        body: FrameBody::Response(Box::new(response_with(QueryOutput::Points(vec![
            Point::new(0.1, 0.2),
            Point::new(0.3, 0.4),
        ])))),
    };
    let bytes = frame.encode();
    // The payload starts with the report: output tag (u8) then the point
    // count (u32). Inflate it to claim ~268M points (4 GiB of data).
    let count_offset = HEADER_LEN + 1;
    let original = u32::from_le_bytes(bytes[count_offset..count_offset + 4].try_into().unwrap());
    assert_eq!(original, 2, "test assumes the count sits after the tag");
    let mut lying = bytes.clone();
    lying[count_offset..count_offset + 4].copy_from_slice(&0x0FFF_FFFFu32.to_le_bytes());
    let body_end = lying.len() - CHECKSUM_LEN;
    let reseal = checksum(&lying[..body_end]);
    lying[body_end..].copy_from_slice(&reseal.to_le_bytes());
    let err = Frame::decode(&lying, DEFAULT_MAX_FRAME_LEN).expect_err("lying count must fail");
    assert!(
        matches!(err, TransportError::Truncated(_)),
        "expected a truncation, got {err:?}"
    );
}

#[test]
fn unknown_tags_are_protocol_errors() {
    // Bad frame kind in the header.
    let frame = Frame {
        request_id: 9,
        body: FrameBody::Rejected,
    };
    let mut bytes = frame.encode();
    bytes[3] = 200;
    let body_end = bytes.len() - CHECKSUM_LEN;
    let reseal = checksum(&bytes[..body_end]);
    bytes[body_end..].copy_from_slice(&reseal.to_le_bytes());
    assert_eq!(
        Frame::decode(&bytes, DEFAULT_MAX_FRAME_LEN).unwrap_err(),
        TransportError::UnknownKind(200)
    );

    // Bad query tag inside a request payload (resealed so the checksum
    // passes and the decoder actually reaches the tag).
    let request = Frame::request(10, Query::point(Point::new(0.5, 0.5)), SubmitOptions::new());
    let mut bytes = request.encode();
    bytes[HEADER_LEN] = 250;
    let body_end = bytes.len() - CHECKSUM_LEN;
    let reseal = checksum(&bytes[..body_end]);
    bytes[body_end..].copy_from_slice(&reseal.to_le_bytes());
    let err = Frame::decode(&bytes, DEFAULT_MAX_FRAME_LEN).unwrap_err();
    assert!(
        matches!(err, TransportError::Protocol(_)),
        "expected a protocol error, got {err:?}"
    );
}

#[test]
fn trailing_bytes_after_a_frame_are_refused() {
    let frame = Frame {
        request_id: 11,
        body: FrameBody::Rejected,
    };
    let mut bytes = frame.encode();
    bytes.push(0);
    let err = Frame::decode(&bytes, DEFAULT_MAX_FRAME_LEN).unwrap_err();
    assert!(matches!(err, TransportError::Protocol(_)), "got {err:?}");
}

#[test]
fn nan_and_extreme_floats_survive_the_wire() {
    let weird = vec![
        Point::new(f64::NAN, f64::NEG_INFINITY),
        Point::new(f64::MIN_POSITIVE, -0.0),
        Point::new(f64::MAX, f64::EPSILON),
    ];
    let frame = Frame {
        request_id: 12,
        body: FrameBody::Response(Box::new(response_with(QueryOutput::Neighbors(
            weird.clone(),
        )))),
    };
    let bytes = frame.encode();
    let decoded = Frame::decode(&bytes, DEFAULT_MAX_FRAME_LEN).unwrap();
    let FrameBody::Response(response) = decoded.body else {
        panic!("wrong body kind");
    };
    let QueryOutput::Neighbors(points) = response.report.output else {
        panic!("wrong output kind");
    };
    for (a, b) in weird.iter().zip(&points) {
        assert_eq!(a.x.to_bits(), b.x.to_bits());
        assert_eq!(a.y.to_bits(), b.y.to_bits());
    }
}
