//! # wazi-service
//!
//! A thread-based concurrent query service over the `wazi-core` fused
//! batch engine: many client threads submit [`wazi_core::Query`] plans, the
//! service
//! coalesces them in a bounded queue under an **adaptive micro-batching
//! window**, executes each coalesced batch through
//! [`wazi_core::QueryEngine::execute_batch`] (default
//! [`wazi_core::BatchStrategy::Auto`]), and routes every response back to
//! its submitter through a completion [`Ticket`].
//!
//! ## Why coalesce
//!
//! The engine's fused kernels fetch each page once per batch however many
//! co-located queries need it — but a fused batch must first *exist*. Under
//! concurrent traffic nobody hands the engine a batch; this crate forms
//! batches from the arrival stream itself, waiting at most one coalescing
//! window before flushing. The window adapts: it grows while arrivals
//! saturate it (capacity cuts) and shrinks when traffic is light (timer
//! cuts), and an EWMA of the cost model's predicted fusion saving
//! ([`wazi_core::CostEstimate`]) collapses it to the minimum whenever the
//! model says sharing is not worth queueing for. See `docs/SERVICE.md` at
//! the repository root for the full guide.
//!
//! ## Failure model
//!
//! A faulty query fails alone; the service never loses a ticket. Batches
//! execute inside [`wazi_core::catch_execution_panic`]: a kernel panic
//! degrades the batch to one-by-one re-execution, so non-faulty riders
//! still get answers bit-identical to solo execution and only the faulty
//! query resolves to [`ServiceError::ExecutionPanicked`]. A worker that
//! dies outside that boundary severs its drained batch into
//! [`ServiceError::WorkerDied`] tickets (they error, never hang) and is
//! respawned by a supervisor thread; every queue-lock acquisition recovers
//! from poisoning. Per-query deadlines ([`SubmitOptions::deadline`]) are
//! culled at batch formation as [`ServiceError::DeadlineExceeded`] — never
//! executed late, never silently dropped. The `fault-injection` feature
//! (on by default) compiles in a deterministic failpoint harness
//! ([`FaultPlan`]) that the chaos tests and the `service-recovery` bench
//! table drive.
//!
//! ## Pipeline
//!
//! ```text
//! clients ──submit()──▶ bounded queue ──window/capacity cut──▶ worker pool
//!    ▲                  (backpressure:                          │ execute_batch
//!    │                   Block | Reject)                        ▼ (Auto strategy)
//!    └──────────── Ticket::wait() ◀─────── per-query QueryResponse routing
//! ```
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use wazi_core::{Query, QueryOutput, SpatialIndex, ZIndex};
//! use wazi_geom::{Point, Rect};
//! use wazi_service::Service;
//!
//! let points: Vec<Point> = (0..1_000)
//!     .map(|i| Point::new((i % 40) as f64 / 40.0, (i / 40) as f64 / 25.0))
//!     .collect();
//! let index: Arc<dyn SpatialIndex> = Arc::new(ZIndex::build_base(points));
//!
//! let service = Service::builder(Arc::clone(&index)).start();
//!
//! // Submit from any number of threads; here, two scoped clients.
//! let (a, b) = std::thread::scope(|s| {
//!     let ta = s.spawn(|| {
//!         let ticket = service
//!             .submit(Query::range_count(Rect::from_coords(0.1, 0.1, 0.6, 0.6)))
//!             .unwrap()
//!             .ticket()
//!             .unwrap();
//!         ticket.wait().unwrap()
//!     });
//!     let tb = s.spawn(|| {
//!         let ticket = service
//!             .submit(Query::knn(Point::new(0.5, 0.5), 3))
//!             .unwrap()
//!             .ticket()
//!             .unwrap();
//!         ticket.wait().unwrap()
//!     });
//!     (ta.join().unwrap(), tb.join().unwrap())
//! });
//!
//! assert!(matches!(a.report.output, QueryOutput::Count(_)));
//! assert!(matches!(b.report.output, QueryOutput::Neighbors(ref n) if n.len() == 3));
//!
//! let stats = service.shutdown(); // drains in-flight work, joins workers
//! assert_eq!(stats.completed, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
#[cfg(feature = "fault-injection")]
pub mod faults;
mod handle;
mod service;
mod stats;
mod window;

pub use config::{FullQueuePolicy, ServiceConfig};
#[cfg(feature = "fault-injection")]
pub use faults::{Fault, FaultPlan};
pub use handle::{BatchSummary, QueryResponse, ServiceError, Submit, SubmitOptions, Ticket};
pub use service::{Service, ServiceBuilder};
pub use stats::ServiceStats;

// Re-export the versioning vocabulary the writer path speaks in
// ([`Service::builder_versioned`], [`Service::apply_write`]), so service
// callers need not depend on `wazi-core` directly for it.
pub use wazi_core::{
    Snapshot, SnapshotSource, VersionStats, VersionedIndex, WriteOp, WriteReceipt,
};

/// Compile-time guarantees the service is built on: everything that crosses
/// a thread boundary — submitted plans, routed responses, completion
/// handles — must be `Send + 'static`. These assertions fail the build of
/// this crate (not just a test run) if a field of any of these types loses
/// the bound.
const fn assert_send_static<T: Send + 'static>() {}

const _: () = {
    assert_send_static::<wazi_core::Query>();
    assert_send_static::<wazi_core::QueryOutput>();
    assert_send_static::<wazi_core::QueryReport>();
    assert_send_static::<wazi_core::BatchReport>();
    assert_send_static::<QueryResponse>();
    assert_send_static::<BatchSummary>();
    assert_send_static::<ServiceError>();
    assert_send_static::<ServiceStats>();
    assert_send_static::<Submit>();
    assert_send_static::<SubmitOptions>();
    assert_send_static::<Ticket>();
};

#[cfg(test)]
mod tests {
    use std::sync::Arc;
    use std::time::Duration;

    use wazi_core::{
        BatchStrategy, EngineError, Query, QueryEngine, QueryOutput, SpatialIndex, ZIndex,
    };
    use wazi_geom::{Point, Rect};

    use crate::{FullQueuePolicy, Service, ServiceError, Submit};

    fn clustered_points(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new((i % 50) as f64 / 50.0, (i / 50) as f64 / 40.0))
            .collect()
    }

    fn small_index() -> Arc<dyn SpatialIndex> {
        Arc::new(ZIndex::build_base(clustered_points(2_000)))
    }

    /// A mixed workload of overlapping counting ranges, point probes and
    /// kNN plans, deterministic without any RNG.
    fn mixed_queries(n: usize) -> Vec<Query> {
        (0..n)
            .map(|i| match i % 4 {
                0 | 1 => {
                    let off = (i % 7) as f64 / 100.0;
                    Query::range_count(Rect::from_coords(
                        0.10 + off,
                        0.10 + off,
                        0.55 + off,
                        0.50 + off,
                    ))
                }
                2 => Query::point(Point::new(
                    ((i / 4) % 50) as f64 / 50.0,
                    ((i / 4) / 50 % 40) as f64 / 40.0,
                )),
                _ => Query::knn(Point::new(0.3 + (i % 5) as f64 / 10.0, 0.4), 4),
            })
            .collect()
    }

    #[test]
    fn responses_match_solo_execution() {
        let index = small_index();
        let queries = mixed_queries(60);
        let engine = QueryEngine::new(index.as_ref());
        let expected: Vec<QueryOutput> = queries
            .iter()
            .map(|q| engine.execute(q).unwrap().output)
            .collect();

        let service = Service::builder(Arc::clone(&index))
            .window(Duration::from_micros(200), Duration::from_millis(2))
            .start();
        let tickets: Vec<_> = queries
            .iter()
            .map(|q| service.submit(q.clone()).unwrap().ticket().unwrap())
            .collect();
        for (ticket, want) in tickets.into_iter().zip(&expected) {
            let response = ticket.wait().unwrap();
            assert_eq!(&response.report.output, want);
            assert!(response.total_ns >= response.queue_ns);
            assert!(response.batch.size >= 1);
        }
        let stats = service.shutdown();
        assert_eq!(stats.completed, 60);
        assert_eq!(stats.submitted, 60);
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn coalescing_actually_fuses_under_a_wide_window() {
        let index = small_index();
        let service = Service::builder(Arc::clone(&index))
            // A wide fixed window: the first flush waits for the whole burst.
            .fixed_window(Duration::from_millis(200))
            .start();
        let tickets: Vec<_> = (0..16)
            .map(|i| {
                let off = i as f64 / 200.0;
                service
                    .submit(Query::range_count(Rect::from_coords(
                        0.1 + off,
                        0.1,
                        0.5 + off,
                        0.5,
                    )))
                    .unwrap()
                    .ticket()
                    .unwrap()
            })
            .collect();
        let mut max_batch = 0;
        for ticket in tickets {
            let response = ticket.wait().unwrap();
            max_batch = max_batch.max(response.batch.size);
        }
        // All 16 submissions landed well inside the 200ms window, so at
        // least one coalesced batch carried several queries and the fused
        // range kernel served them.
        assert!(
            max_batch > 1,
            "no coalescing happened (max batch {max_batch})"
        );
        let stats = service.shutdown();
        assert!(stats.batches < 16, "every query executed alone");
        assert!(stats.max_batch_size as usize == max_batch);
    }

    #[test]
    fn invalid_query_is_refused_at_submission() {
        let index = small_index();
        let service = Service::builder(index).start();
        let err = service
            .submit(Query::knn(Point::new(f64::NAN, 0.5), 3))
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Engine(EngineError::InvalidQuery(_))
        ));
        // The refusal left the service fully operational.
        let ok = service
            .submit(Query::point(Point::new(0.5, 0.5)))
            .unwrap()
            .ticket()
            .unwrap();
        assert!(matches!(
            ok.wait().unwrap().report.output,
            QueryOutput::Found(_)
        ));
    }

    #[test]
    fn shutdown_drains_pending_queries() {
        let index = small_index();
        // A very wide fixed window and a huge batch bound: nothing flushes
        // until shutdown cuts the queue.
        let service = Service::builder(Arc::clone(&index))
            .fixed_window(Duration::from_secs(30))
            .max_batch(1_000)
            .start();
        let queries = mixed_queries(24);
        let engine = QueryEngine::new(index.as_ref());
        let expected: Vec<QueryOutput> = queries
            .iter()
            .map(|q| engine.execute(q).unwrap().output)
            .collect();
        let tickets: Vec<_> = queries
            .iter()
            .map(|q| service.submit(q.clone()).unwrap().ticket().unwrap())
            .collect();
        let stats = service.shutdown();
        assert_eq!(stats.completed, 24, "shutdown must drain the queue");
        assert!(stats.flushed_on_shutdown >= 1);
        for (ticket, want) in tickets.into_iter().zip(&expected) {
            assert_eq!(ticket.wait().unwrap().report.output, *want);
        }
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let index = small_index();
        let service = Service::builder(Arc::clone(&index)).start();
        let stats = service.shutdown();
        assert_eq!(stats.completed, 0);
        // `shutdown` consumed the handle; a fresh service that is dropped
        // behaves the same way (Drop shuts down gracefully).
        let service = Service::builder(index).start();
        let ticket = service
            .submit(Query::point(Point::new(0.1, 0.1)))
            .unwrap()
            .ticket()
            .unwrap();
        drop(service);
        assert!(ticket.wait().is_ok(), "drop must drain accepted queries");
    }

    #[test]
    fn reject_policy_sheds_under_a_full_queue() {
        let index = small_index();
        let service = Service::builder(index)
            .queue_capacity(1)
            .max_batch(1)
            .on_full(FullQueuePolicy::Reject)
            .start();
        // A tight submission loop against a capacity-1 queue: the single
        // worker cannot keep up with back-to-back submissions, so some are
        // shed. (Deterministically asserting *which* ones would require
        // pausing the worker; the service only guarantees the accounting.)
        let mut tickets = Vec::new();
        let mut shed = 0usize;
        for i in 0..5_000 {
            let q = Query::point(Point::new((i % 50) as f64 / 50.0, 0.2));
            match service.submit(q).unwrap() {
                Submit::Accepted(t) => tickets.push(t),
                Submit::Rejected => shed += 1,
            }
        }
        assert!(shed > 0, "a capacity-1 queue under a tight loop must shed");
        for ticket in tickets {
            assert!(ticket.wait().is_ok());
        }
        let stats = service.shutdown();
        assert_eq!(stats.shed as usize, shed);
        assert_eq!(stats.completed + stats.shed, 5_000);
    }

    #[test]
    fn block_policy_is_lossless() {
        let index = small_index();
        let service = Service::builder(index)
            .queue_capacity(4)
            .max_batch(4)
            .on_full(FullQueuePolicy::Block)
            .start();
        let tickets: Vec<_> = (0..200)
            .map(|i| {
                service
                    .submit(Query::point(Point::new((i % 50) as f64 / 50.0, 0.4)))
                    .unwrap()
                    .ticket()
                    .unwrap()
            })
            .collect();
        for ticket in tickets {
            assert!(ticket.wait().is_ok());
        }
        let stats = service.shutdown();
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.completed, 200);
        assert!(stats.max_batch_size <= 4);
    }

    #[test]
    fn dispatch_mode_executes_every_query_alone() {
        let index = small_index();
        let service = Service::builder(index)
            .max_batch(1)
            .strategy(BatchStrategy::Sequential)
            .start();
        let tickets: Vec<_> = mixed_queries(12)
            .into_iter()
            .map(|q| service.submit(q).unwrap().ticket().unwrap())
            .collect();
        for ticket in tickets {
            assert_eq!(ticket.wait().unwrap().batch.size, 1);
        }
        let stats = service.shutdown();
        assert_eq!(stats.batches, 12);
        assert_eq!(stats.max_batch_size, 1);
    }

    #[test]
    fn deadlines_cull_expired_queries_at_batch_formation() {
        let index = small_index();
        // A wide fixed window: the batch forms 200ms after the first
        // submission, long after the 1ms deadlines have expired.
        let service = Service::builder(Arc::clone(&index))
            .fixed_window(Duration::from_millis(200))
            .max_batch(100)
            .start();
        let queries = mixed_queries(10);
        let tickets: Vec<_> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let options = if i % 2 == 0 {
                    crate::SubmitOptions::new().deadline(Duration::from_millis(1))
                } else {
                    crate::SubmitOptions::new()
                };
                service
                    .submit_with(q.clone(), options)
                    .unwrap()
                    .ticket()
                    .unwrap()
            })
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let outcome = ticket.wait();
            if i % 2 == 0 {
                assert_eq!(
                    outcome,
                    Err(ServiceError::DeadlineExceeded),
                    "query {i} should have expired in the 200ms window"
                );
            } else {
                let response = outcome.unwrap_or_else(|e| panic!("query {i}: {e}"));
                assert_eq!(response.batch.size, 5, "only the live queries batch");
            }
        }
        let stats = service.shutdown();
        assert_eq!(stats.timed_out, 5);
        assert_eq!(stats.completed, 5);
        assert_eq!(stats.submitted, 10);
    }

    #[test]
    fn wait_timeout_distinguishes_pending_from_terminal() {
        let index = small_index();
        let service = Service::builder(Arc::clone(&index))
            .fixed_window(Duration::from_secs(30))
            .max_batch(1_000)
            .start();
        let ticket = service
            .submit(Query::point(Point::new(0.5, 0.5)))
            .unwrap()
            .ticket()
            .unwrap();
        // Nothing flushes inside a 30s window: the ticket is still pending.
        assert!(ticket.wait_timeout(Duration::from_millis(20)).is_none());
        let stats = service.shutdown(); // drains the query
        assert_eq!(stats.completed, 1);
        let response = ticket
            .wait_timeout(Duration::from_secs(5))
            .expect("shutdown drained the query")
            .expect("drain answers it");
        assert!(matches!(response.report.output, QueryOutput::Found(_)));
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn a_kernel_panic_degrades_the_batch_and_fails_only_its_query() {
        use crate::{Fault, FaultPlan};

        let index = small_index();
        let queries = mixed_queries(6);
        let engine = QueryEngine::new(index.as_ref());
        let expected: Vec<QueryOutput> = queries
            .iter()
            .map(|q| engine.execute(q).unwrap().output)
            .collect();

        let plan = Arc::new(FaultPlan::new().with(2, Fault::KernelPanic));
        let service = Service::builder(Arc::clone(&index))
            .fixed_window(Duration::from_secs(30))
            .max_batch(1_000)
            .fault_plan(Arc::clone(&plan))
            .start();
        // Single-threaded submission: seq i == query i.
        let tickets: Vec<_> = queries
            .iter()
            .map(|q| service.submit(q.clone()).unwrap().ticket().unwrap())
            .collect();
        let stats = service.shutdown(); // one shutdown drain batch of 6
        for (i, (ticket, want)) in tickets.into_iter().zip(&expected).enumerate() {
            match ticket.wait() {
                Ok(response) => {
                    assert_ne!(i, 2, "the faulty query must not get a response");
                    assert_eq!(&response.report.output, want, "query {i} diverged");
                    assert!(response.batch.degraded, "query {i} rode the fallback");
                    assert_eq!(response.batch.size, 6);
                    assert_eq!(response.batch.fused_queries, 0);
                }
                Err(ServiceError::ExecutionPanicked { message }) => {
                    assert_eq!(i, 2, "only the faulty query may panic");
                    assert!(
                        message.contains("injected kernel panic"),
                        "panic message lost: {message}"
                    );
                }
                Err(other) => panic!("query {i}: unexpected error {other}"),
            }
        }
        assert_eq!(stats.degraded_batches, 1);
        assert_eq!(stats.panicked, 1);
        assert_eq!(stats.completed, 5);
        assert_eq!(stats.worker_panics, 0, "the panic never left the boundary");
        assert!(plan.injected() >= 2, "batch pass + solo re-execution");
    }

    #[test]
    fn stats_snapshot_mid_flight_is_consistent() {
        let index = small_index();
        let service = Service::builder(index).start();
        let stats = service.stats();
        assert_eq!(stats.submitted, 0);
        assert_eq!(stats.queue_depth, 0);
        assert!(stats.window_ns > 0, "window starts at the configured min");
        let t = service
            .submit(Query::point(Point::new(0.2, 0.2)))
            .unwrap()
            .ticket()
            .unwrap();
        t.wait().unwrap();
        let stats = service.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
    }
}
