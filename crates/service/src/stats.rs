//! The service's observability surface: cheap atomic counters updated by
//! workers and submitters, snapshotted on demand.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counters shared by every thread touching the service. The
/// queue mutex is never taken to update them; [`crate::Service::stats`]
/// takes it only to read the live queue depth.
#[derive(Debug, Default)]
pub(crate) struct StatsInner {
    pub(crate) submitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) flushed_on_capacity: AtomicU64,
    pub(crate) flushed_on_timer: AtomicU64,
    pub(crate) flushed_on_shutdown: AtomicU64,
    pub(crate) max_batch_size: AtomicU64,
    pub(crate) total_queue_wait_ns: AtomicU64,
    pub(crate) max_queue_wait_ns: AtomicU64,
    pub(crate) window_ns: AtomicU64,
    pub(crate) timed_out: AtomicU64,
    pub(crate) panicked: AtomicU64,
    pub(crate) degraded_batches: AtomicU64,
    pub(crate) worker_panics: AtomicU64,
    pub(crate) worker_restarts: AtomicU64,
    pub(crate) connections_opened: AtomicU64,
    pub(crate) connections_severed: AtomicU64,
    pub(crate) connections_drained: AtomicU64,
}

impl StatsInner {
    pub(crate) fn snapshot(&self, queue_depth: usize) -> ServiceStats {
        ServiceStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            flushed_on_capacity: self.flushed_on_capacity.load(Ordering::Relaxed),
            flushed_on_timer: self.flushed_on_timer.load(Ordering::Relaxed),
            flushed_on_shutdown: self.flushed_on_shutdown.load(Ordering::Relaxed),
            queue_depth,
            max_batch_size: self.max_batch_size.load(Ordering::Relaxed),
            total_queue_wait_ns: self.total_queue_wait_ns.load(Ordering::Relaxed),
            max_queue_wait_ns: self.max_queue_wait_ns.load(Ordering::Relaxed),
            window_ns: self.window_ns.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            degraded_batches: self.degraded_batches.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            connections_opened: self.connections_opened.load(Ordering::Relaxed),
            connections_severed: self.connections_severed.load(Ordering::Relaxed),
            connections_drained: self.connections_drained.load(Ordering::Relaxed),
            // Version-lifecycle counters live on the versioned index, not in
            // these atomics; `Service::stats` overlays them when the service
            // was built with a writer path.
            current_epoch: 0,
            writes_applied: 0,
            snapshots_published: 0,
            epochs_retired: 0,
        }
    }

    pub(crate) fn record_max(slot: &AtomicU64, value: u64) {
        slot.fetch_max(value, Ordering::Relaxed);
    }
}

/// A point-in-time snapshot of the service's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Queries accepted into the submission queue.
    pub submitted: u64,
    /// Queries answered with a [`crate::QueryResponse`].
    pub completed: u64,
    /// Queries shed by the [`crate::FullQueuePolicy::Reject`] policy.
    pub shed: u64,
    /// Coalesced batches executed.
    pub batches: u64,
    /// Batches flushed because the queue reached `max_batch`.
    pub flushed_on_capacity: u64,
    /// Batches flushed because the oldest query waited out the window.
    pub flushed_on_timer: u64,
    /// Batches flushed by shutdown draining the queue.
    pub flushed_on_shutdown: u64,
    /// Queries waiting in the queue at snapshot time.
    pub queue_depth: usize,
    /// Largest batch executed so far.
    pub max_batch_size: u64,
    /// Sum over completed queries of their time in the queue (coalescing
    /// latency), in nanoseconds.
    pub total_queue_wait_ns: u64,
    /// Longest time any completed query spent in the queue, in nanoseconds.
    pub max_queue_wait_ns: u64,
    /// The adaptive coalescing window after the most recent flush, in
    /// nanoseconds.
    pub window_ns: u64,
    /// Queries whose [`crate::SubmitOptions::deadline`] expired in the
    /// queue; culled at batch-formation time with
    /// [`crate::ServiceError::DeadlineExceeded`].
    pub timed_out: u64,
    /// Queries that panicked during their own solo re-execution and were
    /// answered with [`crate::ServiceError::ExecutionPanicked`].
    pub panicked: u64,
    /// Coalesced batches whose fused pass panicked and were re-executed
    /// one query at a time (graceful degradation).
    pub degraded_batches: u64,
    /// Worker threads that died on a panic outside the execution boundary.
    pub worker_panics: u64,
    /// Worker threads the supervisor respawned after a panic.
    pub worker_restarts: u64,
    /// Transport connections a network front end opened over this service
    /// (reported via [`crate::Service::note_connection_opened`]; zero when
    /// the service is used purely in-process).
    pub connections_opened: u64,
    /// Connections a front end closed on a fault — read/write timeout, wire
    /// corruption, peer disconnect — rather than a clean end-of-stream.
    pub connections_severed: u64,
    /// Connections whose close path redeemed every in-flight ticket before
    /// releasing the connection (the no-ticket-left-behind guarantee
    /// extended to transports). After a front end shuts down cleanly this
    /// equals [`ServiceStats::connections_opened`].
    pub connections_drained: u64,
    /// Epoch of the currently published index version (0 on a frozen
    /// index, which never advances).
    pub current_epoch: u64,
    /// Write operations applied through [`crate::Service::apply_write`].
    pub writes_applied: u64,
    /// Index versions published by the writer path (one per successful
    /// `apply_write`; 0 on a frozen index).
    pub snapshots_published: u64,
    /// Superseded index versions whose last pinned snapshot was dropped
    /// and whose memory was reclaimed.
    pub epochs_retired: u64,
}

impl ServiceStats {
    /// Mean queries per executed batch (0 before the first batch).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.completed as f64 / self.batches as f64
        }
    }

    /// Mean coalescing latency per completed query in nanoseconds (0
    /// before the first completion).
    pub fn mean_queue_wait_ns(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.total_queue_wait_ns as f64 / self.completed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_derived_means() {
        let inner = StatsInner::default();
        inner.submitted.store(10, Ordering::Relaxed);
        inner.completed.store(8, Ordering::Relaxed);
        inner.batches.store(2, Ordering::Relaxed);
        inner.total_queue_wait_ns.store(4_000, Ordering::Relaxed);
        StatsInner::record_max(&inner.max_batch_size, 5);
        StatsInner::record_max(&inner.max_batch_size, 3);
        let stats = inner.snapshot(1);
        assert_eq!(stats.queue_depth, 1);
        assert_eq!(stats.max_batch_size, 5);
        assert_eq!(stats.mean_batch_size(), 4.0);
        assert_eq!(stats.mean_queue_wait_ns(), 500.0);
    }

    #[test]
    fn empty_stats_divide_safely() {
        let stats = ServiceStats::default();
        assert_eq!(stats.mean_batch_size(), 0.0);
        assert_eq!(stats.mean_queue_wait_ns(), 0.0);
    }
}
