//! Completion handles and response types: what a submitter gets back.

use std::sync::mpsc;

use wazi_core::{EngineError, QueryReport, StrategyDecisions};
use wazi_storage::ExecStats;

/// Errors surfaced by the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The engine rejected the query — either at submission time (invalid
    /// plan, caught before it can poison a coalesced batch) or during batch
    /// execution.
    Engine(EngineError),
    /// The service has shut down and accepts no new submissions.
    Closed,
    /// The response channel was severed without a response. This indicates
    /// a worker died; it does not happen in normal operation (graceful
    /// shutdown drains every pending query first).
    Lost,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Engine(err) => write!(f, "engine error: {err}"),
            ServiceError::Closed => write!(f, "service is shut down"),
            ServiceError::Lost => write!(f, "response channel severed without a response"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<EngineError> for ServiceError {
    fn from(err: EngineError) -> Self {
        ServiceError::Engine(err)
    }
}

/// Batch-level context attached to every response: the per-query
/// [`QueryReport`] answers *what*, this summary answers *how* the batch
/// that carried the query was executed.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSummary {
    /// Number of queries coalesced into the batch.
    pub size: usize,
    /// Wall-clock of the whole batch inside the engine, in nanoseconds.
    pub latency_ns: u64,
    /// Range queries executed through the fused sweep kernel.
    pub fused_queries: usize,
    /// Point probes executed through the fused leaf-grouped kernel.
    pub fused_points: usize,
    /// kNN plans executed through the shared expanding-ring sweep.
    pub fused_knn: usize,
    /// Sweep shards the fused range kernel ran on (zero when sequential).
    pub shards_used: usize,
    /// Work the fused kernels performed once on behalf of several queries.
    pub shared_stats: ExecStats,
    /// The engine's per-partition strategy decisions for this batch.
    pub decisions: StrategyDecisions,
}

/// The service's answer to one submitted query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The per-query report, exactly as [`wazi_core::QueryEngine`] produced
    /// it — output, work counters, per-query latency. Outputs are
    /// bit-identical to a solo `execute` of the same query by the engine's
    /// fusion guarantee.
    pub report: QueryReport,
    /// How the coalesced batch carrying this query was executed.
    pub batch: BatchSummary,
    /// Time the query spent coalescing in the submission queue before a
    /// worker drained it, in nanoseconds.
    pub queue_ns: u64,
    /// End-to-end service latency in nanoseconds: submission to response
    /// routing (queueing + batch execution).
    pub total_ns: u64,
}

/// Outcome of a [`crate::Service::submit`] call.
#[derive(Debug)]
pub enum Submit {
    /// The query was enqueued; redeem the [`Ticket`] for the response.
    Accepted(Ticket),
    /// The queue was full under [`crate::FullQueuePolicy::Reject`]; the
    /// query was shed and will not be executed.
    Rejected,
}

impl Submit {
    /// Returns the ticket of an accepted submission, `None` if shed.
    pub fn ticket(self) -> Option<Ticket> {
        match self {
            Submit::Accepted(ticket) => Some(ticket),
            Submit::Rejected => None,
        }
    }

    /// Returns `true` when the submission was shed.
    pub fn is_rejected(&self) -> bool {
        matches!(self, Submit::Rejected)
    }
}

/// Completion handle for one accepted query. `Send + 'static`: hand it to
/// whatever thread should consume the response.
pub struct Ticket {
    pub(crate) rx: mpsc::Receiver<Result<QueryResponse, ServiceError>>,
}

impl Ticket {
    /// Blocks until the service answers.
    pub fn wait(self) -> Result<QueryResponse, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::Lost))
    }

    /// Returns the response if it has already arrived, without blocking.
    /// `None` means the query is still queued or executing.
    pub fn try_wait(&self) -> Option<Result<QueryResponse, ServiceError>> {
        match self.rx.try_recv() {
            Ok(response) => Some(response),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServiceError::Lost)),
        }
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_error_display() {
        assert_eq!(ServiceError::Closed.to_string(), "service is shut down");
        assert!(ServiceError::Lost.to_string().contains("severed"));
        let engine = ServiceError::from(EngineError::InvalidQuery("nan".into()));
        assert!(engine.to_string().contains("invalid query"));
    }

    #[test]
    fn dropped_sender_surfaces_as_lost() {
        let (tx, rx) = mpsc::channel();
        drop(tx);
        let ticket = Ticket { rx };
        assert!(ticket.try_wait() == Some(Err(ServiceError::Lost)));
    }

    #[test]
    fn rejected_submission_has_no_ticket() {
        assert!(Submit::Rejected.is_rejected());
        assert!(Submit::Rejected.ticket().is_none());
    }
}
