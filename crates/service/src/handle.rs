//! Completion handles and response types: what a submitter gets back.

use std::sync::mpsc;
use std::time::Duration;

use wazi_core::{EngineError, QueryReport, StrategyDecisions};
use wazi_storage::ExecStats;

/// Errors surfaced by the service.
///
/// Marked `#[non_exhaustive]` (like [`EngineError`] and
/// `wazi_core::IndexError`): the failure taxonomy grows with the service,
/// and downstream matches must keep a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServiceError {
    /// The engine rejected the query — either at submission time (invalid
    /// plan, caught before it can poison a coalesced batch) or during batch
    /// execution.
    Engine(EngineError),
    /// The service has shut down and accepts no new submissions.
    Closed,
    /// The worker that drained this query died (panicked outside the
    /// execution boundary) before routing a response. The supervisor
    /// respawns the worker; only the queries it was holding are lost, and
    /// each of their tickets resolves to this error rather than hanging.
    WorkerDied,
    /// Execution panicked inside a kernel while this query was being
    /// answered **and** the panic was attributed to this query: the batch
    /// it rode in was re-executed one query at a time, every other query
    /// got its normal response, and this one panicked again on its own.
    ExecutionPanicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The query's [`SubmitOptions::deadline`] expired while it was still
    /// queued, so the service dropped it at batch-formation time instead of
    /// executing it late.
    DeadlineExceeded,
    /// [`crate::Service::apply_write`] was called on a service built over a
    /// frozen index ([`crate::Service::builder`]); only a service built with
    /// [`crate::Service::builder_versioned`] has a writer path.
    WritesUnsupported,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Engine(err) => write!(f, "engine error: {err}"),
            ServiceError::Closed => write!(f, "service is shut down"),
            ServiceError::WorkerDied => {
                write!(f, "worker died before routing a response to this query")
            }
            ServiceError::ExecutionPanicked { message } => {
                write!(f, "execution panicked on this query: {message}")
            }
            ServiceError::DeadlineExceeded => {
                write!(f, "deadline expired before the query reached a worker")
            }
            ServiceError::WritesUnsupported => {
                write!(
                    f,
                    "service was built over a frozen index; writes need a versioned index"
                )
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<EngineError> for ServiceError {
    fn from(err: EngineError) -> Self {
        match err {
            // Unwrap the engine's panic capture into the service's own
            // variant so callers match one taxonomy, not a nested one.
            EngineError::ExecutionPanicked(message) => ServiceError::ExecutionPanicked { message },
            other => ServiceError::Engine(other),
        }
    }
}

/// Per-submission options for [`crate::Service::submit_with`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct SubmitOptions {
    /// Maximum time the query may spend in the service, measured from
    /// acceptance. A query whose deadline expires while it is still queued
    /// is culled at batch-formation time and its ticket resolves to
    /// [`ServiceError::DeadlineExceeded`] — it is never executed late and
    /// never silently dropped. `None` (the default) means no deadline.
    pub deadline: Option<Duration>,
}

impl SubmitOptions {
    /// Options with no deadline (same as `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the deadline, measured from acceptance.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Batch-level context attached to every response: the per-query
/// [`QueryReport`] answers *what*, this summary answers *how* the batch
/// that carried the query was executed.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSummary {
    /// Number of queries coalesced into the batch.
    pub size: usize,
    /// Wall-clock of the whole batch inside the engine, in nanoseconds.
    pub latency_ns: u64,
    /// Range queries executed through the fused sweep kernel.
    pub fused_queries: usize,
    /// Point probes executed through the fused leaf-grouped kernel.
    pub fused_points: usize,
    /// kNN plans executed through the shared expanding-ring sweep.
    pub fused_knn: usize,
    /// Sweep shards the fused range kernel ran on (zero when sequential).
    pub shards_used: usize,
    /// Work the fused kernels performed once on behalf of several queries.
    pub shared_stats: ExecStats,
    /// The engine's per-partition strategy decisions for this batch.
    pub decisions: StrategyDecisions,
    /// Epoch of the index snapshot the batch executed against: 0 forever on
    /// a frozen index, and the [`wazi_core::Snapshot::epoch`] of the pinned
    /// snapshot on a versioned one. Every query in a batch reads the same
    /// epoch — a batch never observes a write published mid-execution.
    pub epoch: u64,
    /// `true` when the coalesced pass panicked and this response came from
    /// the degraded one-query-at-a-time re-execution. Outputs are still
    /// bit-identical to solo execution (they *are* solo executions); only
    /// the fusion counters above are zero and the latency reflects the
    /// sequential fallback.
    pub degraded: bool,
}

/// The service's answer to one submitted query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The per-query report, exactly as [`wazi_core::QueryEngine`] produced
    /// it — output, work counters, per-query latency. Outputs are
    /// bit-identical to a solo `execute` of the same query by the engine's
    /// fusion guarantee.
    pub report: QueryReport,
    /// How the coalesced batch carrying this query was executed.
    pub batch: BatchSummary,
    /// Time the query spent coalescing in the submission queue before a
    /// worker drained it, in nanoseconds.
    pub queue_ns: u64,
    /// End-to-end service latency in nanoseconds: submission to response
    /// routing (queueing + batch execution).
    pub total_ns: u64,
}

/// Outcome of a [`crate::Service::submit`] call.
#[derive(Debug)]
pub enum Submit {
    /// The query was enqueued; redeem the [`Ticket`] for the response.
    Accepted(Ticket),
    /// The queue was full under [`crate::FullQueuePolicy::Reject`]; the
    /// query was shed and will not be executed.
    Rejected,
}

impl Submit {
    /// Returns the ticket of an accepted submission, `None` if shed.
    pub fn ticket(self) -> Option<Ticket> {
        match self {
            Submit::Accepted(ticket) => Some(ticket),
            Submit::Rejected => None,
        }
    }

    /// Returns `true` when the submission was shed.
    pub fn is_rejected(&self) -> bool {
        matches!(self, Submit::Rejected)
    }
}

/// Completion handle for one accepted query. `Send + 'static`: hand it to
/// whatever thread should consume the response.
pub struct Ticket {
    pub(crate) rx: mpsc::Receiver<Result<QueryResponse, ServiceError>>,
}

impl Ticket {
    /// Blocks until the service answers. A severed channel (the worker
    /// holding this query died before routing anything) surfaces as
    /// [`ServiceError::WorkerDied`], never as a hang.
    pub fn wait(self) -> Result<QueryResponse, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::WorkerDied))
    }

    /// Blocks for at most `timeout` for the service to answer. `None`
    /// means the query is still queued or executing — the ticket remains
    /// redeemable; `Some` carries the terminal outcome (including
    /// [`ServiceError::WorkerDied`] for a severed channel).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<QueryResponse, ServiceError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(response) => Some(response),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServiceError::WorkerDied)),
        }
    }

    /// Returns the response if it has already arrived, without blocking.
    /// `None` means the query is still queued or executing.
    pub fn try_wait(&self) -> Option<Result<QueryResponse, ServiceError>> {
        match self.rx.try_recv() {
            Ok(response) => Some(response),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServiceError::WorkerDied)),
        }
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_error_display() {
        assert_eq!(ServiceError::Closed.to_string(), "service is shut down");
        assert!(ServiceError::WorkerDied.to_string().contains("worker died"));
        assert!(ServiceError::DeadlineExceeded
            .to_string()
            .contains("deadline expired"));
        let panicked = ServiceError::ExecutionPanicked {
            message: "index out of bounds".into(),
        };
        assert!(panicked.to_string().contains("index out of bounds"));
        let engine = ServiceError::from(EngineError::InvalidQuery("nan".into()));
        assert!(engine.to_string().contains("invalid query"));
    }

    #[test]
    fn engine_panic_unwraps_into_the_service_variant() {
        let err = ServiceError::from(EngineError::ExecutionPanicked("boom".into()));
        assert_eq!(
            err,
            ServiceError::ExecutionPanicked {
                message: "boom".into()
            }
        );
    }

    #[test]
    fn dropped_sender_surfaces_as_worker_died() {
        let (tx, rx) = mpsc::channel::<Result<QueryResponse, ServiceError>>();
        drop(tx);
        let ticket = Ticket { rx };
        assert!(ticket.wait_timeout(Duration::ZERO) == Some(Err(ServiceError::WorkerDied)));
        assert!(ticket.try_wait() == Some(Err(ServiceError::WorkerDied)));
        assert_eq!(ticket.wait(), Err(ServiceError::WorkerDied));
    }

    #[test]
    fn submit_options_compose() {
        assert_eq!(SubmitOptions::new().deadline, None);
        let opts = SubmitOptions::new().deadline(Duration::from_millis(5));
        assert_eq!(opts.deadline, Some(Duration::from_millis(5)));
    }

    #[test]
    fn rejected_submission_has_no_ticket() {
        assert!(Submit::Rejected.is_rejected());
        assert!(Submit::Rejected.ticket().is_none());
    }
}
