//! The service proper: bounded submission queue, worker pool, coalesced
//! execution, response routing, graceful shutdown.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wazi_core::{BatchStrategy, Query, QueryEngine, SpatialIndex};

use crate::config::{FullQueuePolicy, ServiceConfig};
use crate::handle::{BatchSummary, QueryResponse, ServiceError, Submit, Ticket};
use crate::stats::{ServiceStats, StatsInner};
use crate::window::{FlushCause, WindowController};

/// One accepted query waiting in the submission queue.
struct Pending {
    query: Query,
    tx: mpsc::Sender<Result<QueryResponse, ServiceError>>,
    submitted_at: Instant,
}

/// State behind the service mutex.
struct QueueState {
    pending: VecDeque<Pending>,
    window: WindowController,
    shutdown: bool,
}

/// State shared by the service handle, its workers and every submitter.
struct Shared {
    index: Arc<dyn SpatialIndex>,
    config: ServiceConfig,
    queue: Mutex<QueueState>,
    /// Signalled when work arrives or shutdown begins; workers wait here.
    work: Condvar,
    /// Signalled when a worker drains the queue; blocked submitters under
    /// [`FullQueuePolicy::Block`] wait here.
    space: Condvar,
    stats: StatsInner,
}

/// Builder-style front end for a [`Service`]; construct with
/// [`Service::builder`], finish with [`ServiceBuilder::start`].
pub struct ServiceBuilder {
    index: Arc<dyn SpatialIndex>,
    config: ServiceConfig,
}

impl std::fmt::Debug for ServiceBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceBuilder")
            .field("index", &self.index.name())
            .field("config", &self.config)
            .finish()
    }
}

impl ServiceBuilder {
    /// Bounds the submission queue (floored at 1 query).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity.max(1);
        self
    }

    /// Bounds the coalesced batch size (floored at 1). `1` is dispatch
    /// mode: every query executes alone, nothing coalesces.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.config.max_batch = max_batch.max(1);
        self
    }

    /// Sets the adaptive window's bounds (`max` floored at `min`).
    pub fn window(mut self, min: Duration, max: Duration) -> Self {
        self.config.min_window = min;
        self.config.max_window = max.max(min);
        self
    }

    /// Pins the window to a fixed value (no adaptation range).
    pub fn fixed_window(self, window: Duration) -> Self {
        self.window(window, window)
    }

    /// Sizes the worker pool explicitly (floored at 1 thread). The default
    /// is the host's `available_parallelism`.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers.max(1);
        self
    }

    /// Sets the backpressure policy for a full submission queue.
    pub fn on_full(mut self, policy: FullQueuePolicy) -> Self {
        self.config.on_full = policy;
        self
    }

    /// Sets the engine strategy used for every coalesced batch.
    pub fn strategy(mut self, strategy: BatchStrategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Starts the worker pool and returns the running service.
    pub fn start(self) -> Service {
        let window = WindowController::new(
            self.config.min_window.as_nanos() as u64,
            self.config.max_window.as_nanos() as u64,
        );
        let shared = Arc::new(Shared {
            index: self.index,
            queue: Mutex::new(QueueState {
                pending: VecDeque::with_capacity(self.config.queue_capacity.min(4096)),
                window,
                shutdown: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            stats: StatsInner::default(),
            config: self.config,
        });
        shared.stats.window_ns.store(
            shared.config.min_window.as_nanos() as u64,
            Ordering::Relaxed,
        );
        let workers = (0..shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("wazi-service-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        Service { shared, workers }
    }
}

/// A running concurrent query service over one shared index.
///
/// Submissions from any number of client threads coalesce in a bounded
/// queue under an adaptive micro-batching window and execute as fused
/// engine batches; see the crate docs for the pipeline and
/// `docs/SERVICE.md` at the repository root for the full guide.
///
/// The handle is `Sync`: share `&Service` across client threads (e.g. via
/// `std::thread::scope`). Dropping it shuts the service down gracefully,
/// draining every accepted query first.
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Starts building a service over `index`.
    pub fn builder(index: Arc<dyn SpatialIndex>) -> ServiceBuilder {
        ServiceBuilder {
            index,
            config: ServiceConfig::default(),
        }
    }

    /// The configuration the service runs under.
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.config
    }

    /// Submits one query for coalesced execution.
    ///
    /// Validates the plan immediately — an invalid query is refused here
    /// with [`ServiceError::Engine`] rather than poisoning a whole
    /// coalesced batch later (the engine rejects batches atomically).
    /// When the queue is full, [`FullQueuePolicy::Block`] waits for space
    /// and [`FullQueuePolicy::Reject`] sheds ([`Submit::Rejected`]).
    pub fn submit(&self, query: Query) -> Result<Submit, ServiceError> {
        query.validate()?;
        let shared = &self.shared;
        let mut queue = shared.queue.lock().expect("service mutex");
        loop {
            if queue.shutdown {
                return Err(ServiceError::Closed);
            }
            if queue.pending.len() < shared.config.queue_capacity {
                break;
            }
            match shared.config.on_full {
                FullQueuePolicy::Reject => {
                    shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                    return Ok(Submit::Rejected);
                }
                FullQueuePolicy::Block => {
                    queue = shared.space.wait(queue).expect("service mutex");
                }
            }
        }
        let (tx, rx) = mpsc::channel();
        queue.pending.push_back(Pending {
            query,
            tx,
            submitted_at: Instant::now(),
        });
        let depth = queue.pending.len();
        drop(queue);
        shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        // Wake a worker only when it has something new to act on: the
        // empty→nonempty transition (a timer must be armed for the new
        // oldest query) or a queue deep enough for a capacity cut. Any
        // other submission is already covered by the armed timer —
        // notifying on every submit would wake the worker once per query,
        // the exact per-query overhead coalescing exists to amortise.
        if depth == 1 || depth >= shared.config.max_batch {
            shared.work.notify_one();
        }
        Ok(Submit::Accepted(Ticket { rx }))
    }

    /// Snapshots the service counters (including the live queue depth).
    pub fn stats(&self) -> ServiceStats {
        let depth = self
            .shared
            .queue
            .lock()
            .expect("service mutex")
            .pending
            .len();
        self.shared.stats.snapshot(depth)
    }

    /// Shuts down gracefully: refuses new submissions, drains every
    /// accepted query through the engine (their tickets all resolve), joins
    /// the worker pool, and returns the final counters.
    pub fn shutdown(mut self) -> ServiceStats {
        self.shutdown_in_place();
        self.stats()
    }

    fn shutdown_in_place(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("service mutex");
            queue.shutdown = true;
        }
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("index", &self.shared.index.name())
            .field("config", &self.shared.config)
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Drains up to `max_batch` pending queries, deciding the flush cause.
/// Returns `None` (worker exits) once the service is shut down and empty.
fn next_batch(shared: &Shared) -> Option<(Vec<Pending>, FlushCause)> {
    let mut queue: MutexGuard<'_, QueueState> = shared.queue.lock().expect("service mutex");
    loop {
        if queue.pending.is_empty() {
            if queue.shutdown {
                return None;
            }
            queue = shared.work.wait(queue).expect("service mutex");
            continue;
        }
        let cause = if queue.shutdown {
            FlushCause::Shutdown
        } else if queue.pending.len() >= shared.config.max_batch {
            FlushCause::Capacity
        } else {
            let window = Duration::from_nanos(queue.window.window_ns());
            let oldest = queue.pending.front().expect("non-empty queue").submitted_at;
            let waited = oldest.elapsed();
            if waited < window {
                let (guard, _timeout) = shared
                    .work
                    .wait_timeout(queue, window - waited)
                    .expect("service mutex");
                queue = guard;
                continue;
            }
            FlushCause::Timer
        };
        let take = queue.pending.len().min(shared.config.max_batch);
        let batch: Vec<Pending> = queue.pending.drain(..take).collect();
        if !queue.pending.is_empty() {
            // Leftovers (queue deeper than one batch): wake a sibling so it
            // can start cutting the next batch while this one executes.
            shared.work.notify_one();
        }
        drop(queue);
        // Space opened up: release submitters blocked on the full queue.
        shared.space.notify_all();
        return Some((batch, cause));
    }
}

fn worker_loop(shared: &Shared) {
    while let Some((batch, cause)) = next_batch(shared) {
        execute_and_respond(shared, batch, cause);
    }
}

/// Executes one coalesced batch and routes each response to its submitter.
fn execute_and_respond(shared: &Shared, batch: Vec<Pending>, cause: FlushCause) {
    let drained_at = Instant::now();
    let queries: Vec<Query> = batch.iter().map(|p| p.query.clone()).collect();
    let engine = QueryEngine::new(shared.index.as_ref()).with_strategy(shared.config.strategy);
    let report = match engine.execute_batch(&queries) {
        Ok(report) => report,
        Err(err) => {
            // Queries are validated at submission, so this is unreachable
            // for plan errors; still, fail every submitter loudly rather
            // than dropping tickets.
            let service_err = ServiceError::Engine(err);
            for pending in batch {
                let _ = pending.tx.send(Err(service_err.clone()));
            }
            return;
        }
    };

    // Feed the flush back into the adaptive window (brief lock; execution
    // above ran unlocked).
    {
        let mut queue = shared.queue.lock().expect("service mutex");
        queue.window.observe_flush(
            cause,
            batch.len(),
            shared.config.max_batch,
            &report.strategy_chosen,
        );
        shared
            .stats
            .window_ns
            .store(queue.window.window_ns(), Ordering::Relaxed);
    }

    let stats = &shared.stats;
    stats.batches.fetch_add(1, Ordering::Relaxed);
    match cause {
        FlushCause::Capacity => stats.flushed_on_capacity.fetch_add(1, Ordering::Relaxed),
        FlushCause::Timer => stats.flushed_on_timer.fetch_add(1, Ordering::Relaxed),
        FlushCause::Shutdown => stats.flushed_on_shutdown.fetch_add(1, Ordering::Relaxed),
    };
    StatsInner::record_max(&stats.max_batch_size, batch.len() as u64);

    let summary = BatchSummary {
        size: batch.len(),
        latency_ns: report.latency_ns,
        fused_queries: report.fused_queries,
        fused_points: report.fused_points,
        fused_knn: report.fused_knn,
        shards_used: report.shards_used,
        shared_stats: report.shared_stats,
        decisions: report.strategy_chosen,
    };

    // Count the batch as completed *before* routing responses, so a client
    // that receives its response and immediately snapshots the stats never
    // sees its own query missing from `completed`.
    let mut queue_wait_total = 0u64;
    let queue_waits: Vec<u64> = batch
        .iter()
        .map(|pending| {
            let queue_ns = drained_at
                .saturating_duration_since(pending.submitted_at)
                .as_nanos() as u64;
            queue_wait_total += queue_ns;
            StatsInner::record_max(&stats.max_queue_wait_ns, queue_ns);
            queue_ns
        })
        .collect();
    stats
        .completed
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    stats
        .total_queue_wait_ns
        .fetch_add(queue_wait_total, Ordering::Relaxed);

    for ((pending, query_report), queue_ns) in
        batch.into_iter().zip(report.reports).zip(queue_waits)
    {
        let total_ns = pending.submitted_at.elapsed().as_nanos() as u64;
        // A submitter that dropped its ticket is gone; that is its choice.
        let _ = pending.tx.send(Ok(QueryResponse {
            report: query_report,
            batch: summary.clone(),
            queue_ns,
            total_ns,
        }));
    }
}
