//! The service proper: bounded submission queue, worker pool, coalesced
//! execution, response routing, fault isolation, worker supervision,
//! graceful shutdown.
//!
//! ## Failure model (implementation view)
//!
//! Three layers keep one faulty query from taking the service down — see
//! `docs/SERVICE.md` at the repository root for the user-facing guide:
//!
//! 1. **Panic isolation + graceful degradation.** Every coalesced batch
//!    executes inside [`wazi_core::catch_execution_panic`]. If the fused
//!    pass panics, [`degrade_batch`] re-executes the batch's queries one at
//!    a time (each again inside the catch boundary): every non-faulty
//!    query gets its normal response — bit-identical to solo execution,
//!    because it *is* a solo execution — and only the query that panics
//!    alone resolves to [`ServiceError::ExecutionPanicked`].
//! 2. **Poison-resistant locking.** Every acquisition of the queue mutex
//!    (including through the condvars) recovers the guard from a
//!    [`PoisonError`], so a worker that dies while holding the lock cannot
//!    wedge submitters, siblings, or shutdown. The queue state stays
//!    consistent because workers only mutate it by draining whole batches.
//! 3. **Worker supervision.** Each worker holds an [`ExitGuard`] that
//!    reports its exit (and whether it panicked) to a supervisor thread,
//!    which joins the dead thread and respawns a replacement into the same
//!    slot — so the pool returns to full strength after any panic that
//!    escapes the execution boundary. The queries the dead worker had
//!    already drained are the only casualties; their tickets resolve to
//!    [`ServiceError::WorkerDied`] when the senders drop.
//!
//! Deadlines are enforced at batch-formation time: a query whose
//! [`SubmitOptions::deadline`] expired while queued is culled from the
//! drained batch with [`ServiceError::DeadlineExceeded`] instead of being
//! executed late — and never silently dropped.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wazi_core::{
    catch_execution_panic, BatchStrategy, EngineError, Query, QueryEngine, Snapshot,
    SnapshotSource, SpatialIndex, StrategyDecisions, VersionStats, WriteOp, WriteReceipt,
};

use crate::config::{FullQueuePolicy, ServiceConfig};
#[cfg(feature = "fault-injection")]
use crate::faults::{self, FaultPlan};
use crate::handle::{BatchSummary, QueryResponse, ServiceError, Submit, SubmitOptions, Ticket};
use crate::stats::{ServiceStats, StatsInner};
use crate::window::{FlushCause, WindowController};

/// One accepted query waiting in the submission queue.
struct Pending {
    /// Submission sequence number: the order of acceptance, from 0.
    #[cfg_attr(not(feature = "fault-injection"), allow(dead_code))]
    seq: u64,
    query: Query,
    tx: mpsc::Sender<Result<QueryResponse, ServiceError>>,
    submitted_at: Instant,
    /// Absolute expiry instant, from [`SubmitOptions::deadline`].
    deadline: Option<Instant>,
}

/// State behind the service mutex.
struct QueueState {
    pending: VecDeque<Pending>,
    window: WindowController,
    shutdown: bool,
}

/// What the service executes queries against: a frozen index shared
/// directly, or a versioned index whose current snapshot is pinned per
/// batch (the writer path of [`Service::apply_write`]).
enum IndexSource {
    Frozen(Arc<dyn SpatialIndex>),
    Versioned(Arc<dyn SnapshotSource>),
}

impl IndexSource {
    /// Pins the version a batch will execute against. On a frozen index
    /// this is a plain borrow; on a versioned one it takes an epoch-pinned
    /// snapshot, so the whole batch — including a degraded re-execution —
    /// reads one immutable version however many writes are published
    /// meanwhile.
    fn pin(&self) -> PinnedIndex<'_> {
        match self {
            IndexSource::Frozen(index) => PinnedIndex::Frozen(index.as_ref()),
            IndexSource::Versioned(source) => PinnedIndex::Snapshot(source.snapshot()),
        }
    }
}

/// One batch's pinned view of the index; see [`IndexSource::pin`].
enum PinnedIndex<'a> {
    Frozen(&'a dyn SpatialIndex),
    Snapshot(Snapshot),
}

impl PinnedIndex<'_> {
    fn index(&self) -> &dyn SpatialIndex {
        match self {
            PinnedIndex::Frozen(index) => *index,
            PinnedIndex::Snapshot(snapshot) => snapshot,
        }
    }

    /// The epoch stamped into the batch's [`BatchSummary`]; 0 on a frozen
    /// index.
    fn epoch(&self) -> u64 {
        match self {
            PinnedIndex::Frozen(_) => 0,
            PinnedIndex::Snapshot(snapshot) => snapshot.epoch(),
        }
    }
}

/// State shared by the service handle, its workers and every submitter.
struct Shared {
    index: IndexSource,
    /// Cached display name of the underlying index (the source may need a
    /// snapshot to answer, so it is resolved once at startup).
    index_name: &'static str,
    config: ServiceConfig,
    queue: Mutex<QueueState>,
    /// Signalled when work arrives or shutdown begins; workers wait here.
    work: Condvar,
    /// Signalled when a worker drains the queue; blocked submitters under
    /// [`FullQueuePolicy::Block`] wait here.
    space: Condvar,
    stats: StatsInner,
    #[cfg(feature = "fault-injection")]
    fault_plan: Option<Arc<FaultPlan>>,
}

/// Acquires the queue mutex, recovering the guard if a worker panicked
/// while holding it. The state a panicking worker leaves behind is always
/// consistent: batches are drained atomically under the guard, and the
/// window controller's fields are plain integers updated in place.
fn lock_queue(shared: &Shared) -> MutexGuard<'_, QueueState> {
    shared.queue.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Builder-style front end for a [`Service`]; construct with
/// [`Service::builder`], finish with [`ServiceBuilder::start`].
pub struct ServiceBuilder {
    index: IndexSource,
    index_name: &'static str,
    config: ServiceConfig,
    #[cfg(feature = "fault-injection")]
    fault_plan: Option<Arc<FaultPlan>>,
}

impl std::fmt::Debug for ServiceBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceBuilder")
            .field("index", &self.index_name)
            .field("config", &self.config)
            .finish()
    }
}

impl ServiceBuilder {
    /// Bounds the submission queue (floored at 1 query).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity.max(1);
        self
    }

    /// Bounds the coalesced batch size (floored at 1). `1` is dispatch
    /// mode: every query executes alone, nothing coalesces.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.config.max_batch = max_batch.max(1);
        self
    }

    /// Sets the adaptive window's bounds (`max` floored at `min`).
    pub fn window(mut self, min: Duration, max: Duration) -> Self {
        self.config.min_window = min;
        self.config.max_window = max.max(min);
        self
    }

    /// Pins the window to a fixed value (no adaptation range).
    pub fn fixed_window(self, window: Duration) -> Self {
        self.window(window, window)
    }

    /// Sizes the worker pool explicitly (floored at 1 thread). The default
    /// is the host's `available_parallelism`.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers.max(1);
        self
    }

    /// Sets the backpressure policy for a full submission queue.
    pub fn on_full(mut self, policy: FullQueuePolicy) -> Self {
        self.config.on_full = policy;
        self
    }

    /// Sets the engine strategy used for every coalesced batch.
    pub fn strategy(mut self, strategy: BatchStrategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Installs a deterministic fault plan (the chaos harness): faults
    /// fire at the planned submission sequence numbers. See
    /// [`crate::faults`].
    #[cfg(feature = "fault-injection")]
    pub fn fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Starts the worker pool (under supervision) and returns the running
    /// service.
    pub fn start(self) -> Service {
        let window = WindowController::new(
            self.config.min_window.as_nanos() as u64,
            self.config.max_window.as_nanos() as u64,
        );
        let shared = Arc::new(Shared {
            index: self.index,
            index_name: self.index_name,
            queue: Mutex::new(QueueState {
                pending: VecDeque::with_capacity(self.config.queue_capacity.min(4096)),
                window,
                shutdown: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            stats: StatsInner::default(),
            config: self.config,
            #[cfg(feature = "fault-injection")]
            fault_plan: self.fault_plan,
        });
        shared.stats.window_ns.store(
            shared.config.min_window.as_nanos() as u64,
            Ordering::Relaxed,
        );
        let (exit_tx, exit_rx) = mpsc::channel();
        let handles: Vec<Option<JoinHandle<()>>> = (0..shared.config.workers)
            .map(|slot| Some(spawn_worker(Arc::clone(&shared), slot, exit_tx.clone())))
            .collect();
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("wazi-service-supervisor".into())
                .spawn(move || supervisor_loop(shared, handles, exit_rx, exit_tx))
                .expect("spawn service supervisor")
        };
        Service {
            shared,
            supervisor: Some(supervisor),
        }
    }
}

/// A running concurrent query service over one shared index.
///
/// Submissions from any number of client threads coalesce in a bounded
/// queue under an adaptive micro-batching window and execute as fused
/// engine batches; see the crate docs for the pipeline and
/// `docs/SERVICE.md` at the repository root for the full guide (including
/// the failure model: panic isolation, degraded re-execution, deadlines,
/// worker supervision).
///
/// The handle is `Sync`: share `&Service` across client threads (e.g. via
/// `std::thread::scope`). Dropping it shuts the service down gracefully,
/// draining every accepted query first.
pub struct Service {
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
}

impl Service {
    /// Starts building a service over a frozen `index`: queries only,
    /// [`Service::apply_write`] returns [`ServiceError::WritesUnsupported`].
    pub fn builder(index: Arc<dyn SpatialIndex>) -> ServiceBuilder {
        let index_name = index.name();
        ServiceBuilder {
            index: IndexSource::Frozen(index),
            index_name,
            config: ServiceConfig::default(),
            #[cfg(feature = "fault-injection")]
            fault_plan: None,
        }
    }

    /// Starts building a service over a versioned index
    /// ([`wazi_core::VersionedIndex`] behind its [`SnapshotSource`] facade):
    /// every batch executes against an epoch-pinned snapshot of the current
    /// version, and [`Service::apply_write`] publishes new versions while
    /// queries keep flowing.
    pub fn builder_versioned(source: Arc<dyn SnapshotSource>) -> ServiceBuilder {
        let index_name = source.snapshot().name();
        ServiceBuilder {
            index: IndexSource::Versioned(source),
            index_name,
            config: ServiceConfig::default(),
            #[cfg(feature = "fault-injection")]
            fault_plan: None,
        }
    }

    /// The configuration the service runs under.
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.config
    }

    /// Submits one query for coalesced execution with default options
    /// (no deadline). See [`Service::submit_with`].
    pub fn submit(&self, query: Query) -> Result<Submit, ServiceError> {
        self.submit_with(query, SubmitOptions::default())
    }

    /// Submits one query for coalesced execution.
    ///
    /// Validates the plan immediately — an invalid query is refused here
    /// with [`ServiceError::Engine`] rather than poisoning a whole
    /// coalesced batch later (the engine rejects batches atomically).
    /// When the queue is full, [`FullQueuePolicy::Block`] waits for space
    /// and [`FullQueuePolicy::Reject`] sheds ([`Submit::Rejected`]).
    ///
    /// A [`SubmitOptions::deadline`] is measured from acceptance; if it
    /// expires while the query is still queued, the query is culled at
    /// batch-formation time and the ticket resolves to
    /// [`ServiceError::DeadlineExceeded`].
    pub fn submit_with(
        &self,
        query: Query,
        options: SubmitOptions,
    ) -> Result<Submit, ServiceError> {
        query.validate()?;
        let shared = &self.shared;
        let mut queue = lock_queue(shared);
        loop {
            if queue.shutdown {
                return Err(ServiceError::Closed);
            }
            if queue.pending.len() < shared.config.queue_capacity {
                break;
            }
            match shared.config.on_full {
                FullQueuePolicy::Reject => {
                    shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                    return Ok(Submit::Rejected);
                }
                FullQueuePolicy::Block => {
                    queue = shared
                        .space
                        .wait(queue)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
        // The sequence number is assigned at acceptance, under the lock, so
        // it is exactly the queue arrival order — the key space fault plans
        // and chaos tests speak in.
        let seq = shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "fault-injection")]
        faults::stall_on_submit(&shared.fault_plan, seq);
        let (tx, rx) = mpsc::channel();
        let submitted_at = Instant::now();
        queue.pending.push_back(Pending {
            seq,
            query,
            tx,
            submitted_at,
            deadline: options.deadline.map(|d| submitted_at + d),
        });
        let depth = queue.pending.len();
        drop(queue);
        // Wake a worker only when it has something new to act on: the
        // empty→nonempty transition (a timer must be armed for the new
        // oldest query) or a queue deep enough for a capacity cut. Any
        // other submission is already covered by the armed timer —
        // notifying on every submit would wake the worker once per query,
        // the exact per-query overhead coalescing exists to amortise.
        if depth == 1 || depth >= shared.config.max_batch {
            shared.work.notify_one();
        }
        Ok(Submit::Accepted(Ticket { rx }))
    }

    /// Applies a batch of write operations through the versioned index's
    /// writer path and publishes the result as a new epoch. Batches already
    /// executing keep their pinned snapshot; batches formed after the
    /// publish read the new version.
    ///
    /// Concurrent callers serialize on the index's writer lock. A panic
    /// inside the writer (a buggy index, or an injected write fault) is
    /// caught here: the working fork is discarded, nothing is published,
    /// and the error is reported as [`ServiceError::ExecutionPanicked`] —
    /// the service itself keeps serving.
    ///
    /// On a service built over a frozen index ([`Service::builder`]) this
    /// returns [`ServiceError::WritesUnsupported`].
    pub fn apply_write(&self, ops: &[WriteOp]) -> Result<WriteReceipt, ServiceError> {
        let source = match &self.shared.index {
            IndexSource::Frozen(_) => return Err(ServiceError::WritesUnsupported),
            IndexSource::Versioned(source) => source,
        };
        match catch_execution_panic(|| Ok(source.apply(ops))) {
            Ok(Ok(receipt)) => Ok(receipt),
            Ok(Err(index_err)) => Err(ServiceError::Engine(EngineError::Index(index_err))),
            Err(engine_err) => Err(ServiceError::from(engine_err)),
        }
    }

    /// The version-lifecycle counters of the underlying versioned index
    /// (`None` on a service built over a frozen index).
    pub fn version_stats(&self) -> Option<VersionStats> {
        match &self.shared.index {
            IndexSource::Frozen(_) => None,
            IndexSource::Versioned(source) => Some(source.version_stats()),
        }
    }

    /// Snapshots the service counters (including the live queue depth and,
    /// on a versioned index, the version-lifecycle counters).
    pub fn stats(&self) -> ServiceStats {
        let depth = lock_queue(&self.shared).pending.len();
        let mut stats = self.shared.stats.snapshot(depth);
        if let Some(versions) = self.version_stats() {
            stats.current_epoch = versions.current_epoch;
            stats.writes_applied = versions.writes_applied;
            stats.snapshots_published = versions.snapshots_published;
            stats.epochs_retired = versions.epochs_retired;
        }
        stats
    }

    /// Records that a transport front end accepted a connection over this
    /// service ([`ServiceStats::connections_opened`]).
    ///
    /// The connection counters are *hooks for transports* (`wazi-net` is
    /// the in-tree caller): the service has no connections of its own, but
    /// it owns the accounting so one snapshot — [`Service::stats`] —
    /// answers for queries and connections alike, and so the
    /// no-ticket-left-behind guarantee can be audited end to end
    /// (`connections_drained == connections_opened` after a clean front-end
    /// shutdown).
    pub fn note_connection_opened(&self) {
        self.shared
            .stats
            .connections_opened
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records that a transport connection was severed on a fault (timeout,
    /// wire corruption, peer disconnect) rather than closed cleanly
    /// ([`ServiceStats::connections_severed`]).
    pub fn note_connection_severed(&self) {
        self.shared
            .stats
            .connections_severed
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records that a transport connection's close path redeemed every
    /// in-flight ticket before releasing the connection
    /// ([`ServiceStats::connections_drained`]).
    pub fn note_connection_drained(&self) {
        self.shared
            .stats
            .connections_drained
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Initiates shutdown without waiting: refuses new submissions from
    /// this point on and wakes both idle workers and submitters blocked on
    /// a full queue (they return [`ServiceError::Closed`]). The drain
    /// proceeds in the background; call [`Service::shutdown`] — or drop
    /// the handle — to wait for it. Callable from any thread sharing
    /// `&Service`, which is what lets one client pull the plug while
    /// others are mid-submit.
    pub fn begin_shutdown(&self) {
        {
            let mut queue = lock_queue(&self.shared);
            queue.shutdown = true;
        }
        self.shared.work.notify_all();
        self.shared.space.notify_all();
    }

    /// Shuts down gracefully: refuses new submissions, drains every
    /// accepted query (their tickets all resolve — with a response, a
    /// deadline error, or a panic error; never a hang), joins the worker
    /// pool through the supervisor, and returns the final counters.
    pub fn shutdown(mut self) -> ServiceStats {
        self.shutdown_in_place();
        self.stats()
    }

    fn shutdown_in_place(&mut self) {
        self.begin_shutdown();
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("index", &self.shared.index_name)
            .field("config", &self.shared.config)
            .field("workers", &self.shared.config.workers)
            .finish()
    }
}

/// A worker's exit report, delivered to the supervisor by [`ExitGuard`].
struct WorkerExit {
    slot: usize,
    panicked: bool,
}

/// Dropped when a worker thread exits — normally or by unwinding — so the
/// supervisor learns about every exit without polling `JoinHandle`s.
struct ExitGuard {
    slot: usize,
    tx: mpsc::Sender<WorkerExit>,
}

impl Drop for ExitGuard {
    fn drop(&mut self) {
        // A closed channel means the supervisor itself is gone (only
        // possible after it counted every worker out); nothing to report.
        let _ = self.tx.send(WorkerExit {
            slot: self.slot,
            panicked: std::thread::panicking(),
        });
    }
}

fn spawn_worker(
    shared: Arc<Shared>,
    slot: usize,
    exit_tx: mpsc::Sender<WorkerExit>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("wazi-service-{slot}"))
        .spawn(move || {
            let _guard = ExitGuard { slot, tx: exit_tx };
            worker_loop(&shared);
        })
        .expect("spawn service worker")
}

/// Joins exited workers and respawns panicked ones into their slot.
///
/// Each worker sends exactly one [`WorkerExit`] (via its [`ExitGuard`]),
/// so the loop runs until every live worker has been counted out. A
/// panicked worker is respawned unless the service is shutting down with
/// an already-empty queue — during a shutdown drain the replacement still
/// spawns, finishes the drain, and exits cleanly, so accepted queries are
/// drained even if the last worker dies mid-shutdown.
fn supervisor_loop(
    shared: Arc<Shared>,
    mut handles: Vec<Option<JoinHandle<()>>>,
    exit_rx: mpsc::Receiver<WorkerExit>,
    exit_tx: mpsc::Sender<WorkerExit>,
) {
    let mut alive = handles.iter().filter(|h| h.is_some()).count();
    while alive > 0 {
        let exit = exit_rx
            .recv()
            .expect("exit channel outlives workers: supervisor holds a sender");
        if let Some(handle) = handles.get_mut(exit.slot).and_then(Option::take) {
            let _ = handle.join();
        }
        alive -= 1;
        if !exit.panicked {
            continue;
        }
        shared.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
        let respawn = {
            let queue = lock_queue(&shared);
            !queue.shutdown || !queue.pending.is_empty()
        };
        if respawn {
            let replacement = spawn_worker(Arc::clone(&shared), exit.slot, exit_tx.clone());
            if let Some(slot) = handles.get_mut(exit.slot) {
                *slot = Some(replacement);
            }
            alive += 1;
            shared.stats.worker_restarts.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some((batch, cause)) = next_batch(shared) {
        execute_and_respond(shared, batch, cause);
    }
}

/// Drains up to `max_batch` pending queries, deciding the flush cause,
/// then culls the drained queries whose deadline expired while queued.
/// Returns `None` (worker exits) once the service is shut down and empty.
fn next_batch(shared: &Shared) -> Option<(Vec<Pending>, FlushCause)> {
    let mut queue: MutexGuard<'_, QueueState> = lock_queue(shared);
    loop {
        if queue.pending.is_empty() {
            if queue.shutdown {
                return None;
            }
            queue = shared
                .work
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
            continue;
        }
        let cause = if queue.shutdown {
            FlushCause::Shutdown
        } else if queue.pending.len() >= shared.config.max_batch {
            FlushCause::Capacity
        } else {
            let window = Duration::from_nanos(queue.window.window_ns());
            let oldest = queue.pending.front().expect("non-empty queue").submitted_at;
            let waited = oldest.elapsed();
            if waited < window {
                let (guard, _timeout) = shared
                    .work
                    .wait_timeout(queue, window - waited)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
                continue;
            }
            FlushCause::Timer
        };
        let take = queue.pending.len().min(shared.config.max_batch);
        let batch: Vec<Pending> = queue.pending.drain(..take).collect();
        // Failpoint: die here, with the guard held and the batch drained —
        // the harshest worker death the service must survive (poisoned
        // mutex, dropped tickets, a pool one thread short).
        #[cfg(feature = "fault-injection")]
        {
            let seqs: Vec<u64> = batch.iter().map(|p| p.seq).collect();
            faults::kill_worker_if_planned(&shared.fault_plan, &seqs);
        }
        if !queue.pending.is_empty() {
            // Leftovers (queue deeper than one batch): wake a sibling so it
            // can start cutting the next batch while this one executes.
            shared.work.notify_one();
        }
        drop(queue);
        // Space opened up: release submitters blocked on the full queue.
        shared.space.notify_all();

        // Deadline cull: expired queries are answered (never executed,
        // never silently dropped) and the rest form the batch. Culling at
        // batch formation keeps the hot submit path free of deadline
        // bookkeeping.
        let now = Instant::now();
        let mut live = Vec::with_capacity(batch.len());
        let mut expired = 0u64;
        for pending in batch {
            match pending.deadline {
                Some(deadline) if now >= deadline => {
                    expired += 1;
                    let _ = pending.tx.send(Err(ServiceError::DeadlineExceeded));
                }
                _ => live.push(pending),
            }
        }
        if expired > 0 {
            shared.stats.timed_out.fetch_add(expired, Ordering::Relaxed);
        }
        if live.is_empty() {
            // The whole drain had expired; go back for real work.
            queue = lock_queue(shared);
            continue;
        }
        return Some((live, cause));
    }
}

/// Executes one coalesced batch and routes each response to its submitter.
///
/// The fused pass runs inside the engine's panic-catch boundary; a panic
/// downgrades the batch to [`degrade_batch`] instead of killing the worker.
fn execute_and_respond(shared: &Shared, batch: Vec<Pending>, cause: FlushCause) {
    let drained_at = Instant::now();
    let queries: Vec<Query> = batch.iter().map(|p| p.query.clone()).collect();
    // Pin the version for the whole batch: every query in it — and the
    // degraded re-execution, should the fused pass panic — reads this one
    // immutable snapshot, whatever the writer publishes meanwhile.
    let pinned = shared.index.pin();
    let epoch = pinned.epoch();
    let engine = QueryEngine::new(pinned.index()).with_strategy(shared.config.strategy);
    #[cfg(feature = "fault-injection")]
    let seqs: Vec<u64> = batch.iter().map(|p| p.seq).collect();
    let result = catch_execution_panic(|| {
        #[cfg(feature = "fault-injection")]
        faults::delay_and_panic_if_planned(&shared.fault_plan, &seqs);
        engine.execute_batch(&queries)
    });
    let report = match result {
        Ok(report) => report,
        Err(EngineError::ExecutionPanicked(_)) => {
            // The coalesced pass panicked somewhere inside a kernel. Fall
            // back to one-query-at-a-time execution so the fault is
            // attributed to exactly the query that carries it.
            degrade_batch(shared, &engine, epoch, batch, cause, drained_at);
            return;
        }
        Err(err) => {
            // Queries are validated at submission, so this is unreachable
            // for plan errors; still, fail every submitter loudly rather
            // than dropping tickets.
            let service_err = ServiceError::from(err);
            for pending in batch {
                let _ = pending.tx.send(Err(service_err.clone()));
            }
            return;
        }
    };

    // Feed the flush back into the adaptive window (brief lock; execution
    // above ran unlocked).
    observe_flush(shared, cause, batch.len(), &report.strategy_chosen);

    let stats = &shared.stats;
    stats.batches.fetch_add(1, Ordering::Relaxed);
    record_flush_cause(stats, cause);
    StatsInner::record_max(&stats.max_batch_size, batch.len() as u64);

    let summary = BatchSummary {
        size: batch.len(),
        latency_ns: report.latency_ns,
        fused_queries: report.fused_queries,
        fused_points: report.fused_points,
        fused_knn: report.fused_knn,
        shards_used: report.shards_used,
        shared_stats: report.shared_stats,
        decisions: report.strategy_chosen,
        epoch,
        degraded: false,
    };

    // Count the batch as completed *before* routing responses, so a client
    // that receives its response and immediately snapshots the stats never
    // sees its own query missing from `completed`.
    let mut queue_wait_total = 0u64;
    let queue_waits: Vec<u64> = batch
        .iter()
        .map(|pending| {
            let queue_ns = drained_at
                .saturating_duration_since(pending.submitted_at)
                .as_nanos() as u64;
            queue_wait_total += queue_ns;
            StatsInner::record_max(&stats.max_queue_wait_ns, queue_ns);
            queue_ns
        })
        .collect();
    stats
        .completed
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    stats
        .total_queue_wait_ns
        .fetch_add(queue_wait_total, Ordering::Relaxed);

    for ((pending, query_report), queue_ns) in
        batch.into_iter().zip(report.reports).zip(queue_waits)
    {
        let total_ns = pending.submitted_at.elapsed().as_nanos() as u64;
        // A submitter that dropped its ticket is gone; that is its choice.
        let _ = pending.tx.send(Ok(QueryResponse {
            report: query_report,
            batch: summary.clone(),
            queue_ns,
            total_ns,
        }));
    }
}

/// Graceful degradation: the coalesced pass panicked, so re-execute the
/// batch one query at a time, each inside its own catch boundary. Every
/// query that survives alone gets its normal response (bit-identical to
/// solo execution — it *is* one); the query that panics again resolves to
/// [`ServiceError::ExecutionPanicked`] carrying the panic message.
fn degrade_batch(
    shared: &Shared,
    engine: &QueryEngine<'_>,
    epoch: u64,
    batch: Vec<Pending>,
    cause: FlushCause,
    drained_at: Instant,
) {
    let stats = &shared.stats;
    let outcomes: Vec<Result<wazi_core::QueryReport, EngineError>> = batch
        .iter()
        .map(|pending| {
            catch_execution_panic(|| {
                #[cfg(feature = "fault-injection")]
                faults::panic_if_planned_solo(&shared.fault_plan, pending.seq);
                engine.execute(&pending.query)
            })
        })
        .collect();

    // The degraded pass still counts as the batch's flush: feed the window
    // a no-decision observation so adaptation keeps running across faults
    // (an EWMA gap, not a stall).
    observe_flush(shared, cause, batch.len(), &StrategyDecisions::default());
    stats.batches.fetch_add(1, Ordering::Relaxed);
    stats.degraded_batches.fetch_add(1, Ordering::Relaxed);
    record_flush_cause(stats, cause);
    StatsInner::record_max(&stats.max_batch_size, batch.len() as u64);

    let summary = BatchSummary {
        size: batch.len(),
        latency_ns: drained_at.elapsed().as_nanos() as u64,
        fused_queries: 0,
        fused_points: 0,
        fused_knn: 0,
        shards_used: 0,
        shared_stats: Default::default(),
        decisions: StrategyDecisions::default(),
        epoch,
        degraded: true,
    };

    let completed = outcomes.iter().filter(|o| o.is_ok()).count() as u64;
    let panicked = outcomes.len() as u64 - completed;
    let mut queue_wait_total = 0u64;
    for (pending, outcome) in batch.iter().zip(&outcomes) {
        if outcome.is_ok() {
            let queue_ns = drained_at
                .saturating_duration_since(pending.submitted_at)
                .as_nanos() as u64;
            queue_wait_total += queue_ns;
            StatsInner::record_max(&stats.max_queue_wait_ns, queue_ns);
        }
    }
    stats.completed.fetch_add(completed, Ordering::Relaxed);
    stats.panicked.fetch_add(panicked, Ordering::Relaxed);
    stats
        .total_queue_wait_ns
        .fetch_add(queue_wait_total, Ordering::Relaxed);

    for (pending, outcome) in batch.into_iter().zip(outcomes) {
        let message = match outcome {
            Ok(report) => {
                let queue_ns = drained_at
                    .saturating_duration_since(pending.submitted_at)
                    .as_nanos() as u64;
                let total_ns = pending.submitted_at.elapsed().as_nanos() as u64;
                Ok(QueryResponse {
                    report,
                    batch: summary.clone(),
                    queue_ns,
                    total_ns,
                })
            }
            Err(err) => Err(ServiceError::from(err)),
        };
        let _ = pending.tx.send(message);
    }
}

/// Feeds one flush into the adaptive window under a brief lock and
/// republishes the resulting window width.
fn observe_flush(
    shared: &Shared,
    cause: FlushCause,
    batch_len: usize,
    decisions: &StrategyDecisions,
) {
    let mut queue = lock_queue(shared);
    queue
        .window
        .observe_flush(cause, batch_len, shared.config.max_batch, decisions);
    shared
        .stats
        .window_ns
        .store(queue.window.window_ns(), Ordering::Relaxed);
}

fn record_flush_cause(stats: &StatsInner, cause: FlushCause) {
    match cause {
        FlushCause::Capacity => stats.flushed_on_capacity.fetch_add(1, Ordering::Relaxed),
        FlushCause::Timer => stats.flushed_on_timer.fetch_add(1, Ordering::Relaxed),
        FlushCause::Shutdown => stats.flushed_on_shutdown.fetch_add(1, Ordering::Relaxed),
    };
}
