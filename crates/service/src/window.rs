//! The adaptive micro-batching window.
//!
//! The service trades a little queueing latency for fused execution: the
//! longer the oldest pending query waits, the more arrivals coalesce into
//! its batch, and the more page visits the fused kernels share. The window
//! controller sets how long that wait may be, adapting to two signals:
//!
//! * **Arrival rate** (multiplicative increase / decrease): a flush forced
//!   by the queue hitting `max_batch` (*capacity cut*) means arrivals are
//!   outpacing the window — coalescing is cheap, so the window doubles. A
//!   flush forced by the timer that drained only a sliver of `max_batch`
//!   (*timer cut* at under a quarter of capacity) means traffic is light —
//!   waiting longer would buy little sharing, so the window halves.
//! * **Predicted fusion benefit** (the cost-model gate): every executed
//!   batch carries the engine's [`StrategyDecisions`], whose range
//!   [`wazi_core::CostEstimate`] predicts what fusion saved over the
//!   sequential loop. The controller tracks an EWMA of that per-query
//!   saving; while the model predicts fusion buys nothing (scattered
//!   workloads, flat-array indexes at low overlap), the window collapses to
//!   its minimum — there is no point taxing latency for sharing that does
//!   not materialize.
//!
//! Both rules are deterministic functions of the observed flushes, so the
//! controller is unit-tested without clocks or threads.

use wazi_core::StrategyDecisions;

/// Why a worker cut a batch from the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FlushCause {
    /// The queue reached `max_batch` pending queries.
    Capacity,
    /// The oldest pending query waited out the coalescing window.
    Timer,
    /// The service is shutting down and drains whatever is queued.
    Shutdown,
}

/// A timer cut draining less than this fraction of `max_batch` counts as
/// light traffic and shrinks the window.
const SHRINK_FILL_DIVISOR: usize = 4;

/// EWMA smoothing factor for the predicted per-query fusion saving.
const SAVING_EWMA_ALPHA: f64 = 0.3;

/// Predicted per-query saving (ns) below which the cost gate collapses the
/// window to its minimum. Roughly the baked calibration's cost of one page
/// fetch shared between two queries — less than that and coalescing is not
/// worth any added queueing latency.
const SAVING_GATE_NS: f64 = 50.0;

/// Deterministic controller for the coalescing window. Owned by the queue
/// state (behind the service mutex), observed by workers after each flush.
#[derive(Debug, Clone)]
pub(crate) struct WindowController {
    min_ns: u64,
    max_ns: u64,
    window_ns: u64,
    /// EWMA of the cost model's predicted per-query fusion saving, `None`
    /// until a batch carries a quantitative range estimate.
    saving_ewma_ns: Option<f64>,
}

impl WindowController {
    pub(crate) fn new(min_ns: u64, max_ns: u64) -> Self {
        let min_ns = min_ns.max(1);
        let max_ns = max_ns.max(min_ns);
        WindowController {
            min_ns,
            max_ns,
            window_ns: min_ns,
            saving_ewma_ns: None,
        }
    }

    /// Current coalescing window in nanoseconds.
    pub(crate) fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Smoothed predicted per-query fusion saving, for introspection.
    #[cfg(test)]
    pub(crate) fn saving_ewma_ns(&self) -> Option<f64> {
        self.saving_ewma_ns
    }

    /// Feeds one executed flush back into the controller.
    ///
    /// `max_batch == 1` is dispatch mode: there is no coalescing to tune,
    /// so the controller does nothing.
    pub(crate) fn observe_flush(
        &mut self,
        cause: FlushCause,
        batch_len: usize,
        max_batch: usize,
        decisions: &StrategyDecisions,
    ) {
        if max_batch <= 1 {
            return;
        }
        // Rate rule: grow on capacity cuts, shrink on underfilled timer cuts.
        match cause {
            FlushCause::Capacity => {
                self.window_ns = (self.window_ns.saturating_mul(2)).min(self.max_ns);
            }
            FlushCause::Timer if batch_len * SHRINK_FILL_DIVISOR <= max_batch => {
                self.window_ns = (self.window_ns / 2).max(self.min_ns);
            }
            FlushCause::Timer | FlushCause::Shutdown => {}
        }
        // Benefit rule: fold the model's predicted saving into the EWMA...
        if let Some(decision) = decisions.range {
            if let Some(estimate) = decision.estimate {
                let best_fused = match estimate.fused_parallel_ns {
                    Some(parallel) => estimate.fused_ns.min(parallel),
                    None => estimate.fused_ns,
                };
                let saving_per_query = (estimate.sequential_ns as f64 - best_fused as f64)
                    / decision.queries.max(1) as f64;
                self.saving_ewma_ns = Some(match self.saving_ewma_ns {
                    Some(ewma) => ewma + SAVING_EWMA_ALPHA * (saving_per_query - ewma),
                    None => saving_per_query,
                });
            }
        }
        // ...and collapse the window while fusion is predicted worthless.
        if matches!(self.saving_ewma_ns, Some(ewma) if ewma < SAVING_GATE_NS) {
            self.window_ns = self.min_ns;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wazi_core::{ChosenStrategy, CostEstimate, PartitionDecision};

    const MIN: u64 = 1_000;
    const MAX: u64 = 16_000;

    fn no_decisions() -> StrategyDecisions {
        StrategyDecisions::default()
    }

    /// A range decision whose estimate predicts `saving` ns of total fusion
    /// benefit spread over `queries` queries.
    fn range_decision(queries: usize, sequential_ns: u64, fused_ns: u64) -> StrategyDecisions {
        StrategyDecisions {
            range: Some(PartitionDecision {
                queries,
                chosen: ChosenStrategy::Fused,
                estimate: Some(CostEstimate {
                    sequential_ns,
                    fused_ns,
                    fused_parallel_ns: None,
                    shards: 1,
                }),
                actual_ns: 0,
            }),
            ..StrategyDecisions::default()
        }
    }

    #[test]
    fn capacity_cuts_double_the_window_up_to_the_max() {
        let mut w = WindowController::new(MIN, MAX);
        for expected in [2_000, 4_000, 8_000, 16_000, 16_000] {
            w.observe_flush(FlushCause::Capacity, 64, 64, &no_decisions());
            assert_eq!(w.window_ns(), expected);
        }
    }

    #[test]
    fn underfilled_timer_cuts_halve_the_window_down_to_the_min() {
        let mut w = WindowController::new(MIN, MAX);
        for _ in 0..4 {
            w.observe_flush(FlushCause::Capacity, 64, 64, &no_decisions());
        }
        assert_eq!(w.window_ns(), MAX);
        // 16 of 64 is exactly a quarter: still counts as underfilled.
        for expected in [8_000, 4_000, 2_000, 1_000, 1_000] {
            w.observe_flush(FlushCause::Timer, 16, 64, &no_decisions());
            assert_eq!(w.window_ns(), expected);
        }
    }

    #[test]
    fn well_filled_timer_cuts_hold_the_window() {
        let mut w = WindowController::new(MIN, MAX);
        w.observe_flush(FlushCause::Capacity, 64, 64, &no_decisions());
        let held = w.window_ns();
        w.observe_flush(FlushCause::Timer, 40, 64, &no_decisions());
        assert_eq!(w.window_ns(), held);
        w.observe_flush(FlushCause::Shutdown, 1, 64, &no_decisions());
        assert_eq!(w.window_ns(), held);
    }

    #[test]
    fn dispatch_mode_never_adapts() {
        let mut w = WindowController::new(MIN, MAX);
        w.observe_flush(FlushCause::Capacity, 1, 1, &no_decisions());
        w.observe_flush(FlushCause::Timer, 1, 1, &no_decisions());
        assert_eq!(w.window_ns(), MIN);
        assert_eq!(w.saving_ewma_ns(), None);
    }

    #[test]
    fn predicted_saving_feeds_the_ewma() {
        let mut w = WindowController::new(MIN, MAX);
        // 10 queries saving 100_000 ns total: 10_000 ns per query.
        w.observe_flush(
            FlushCause::Capacity,
            10,
            64,
            &range_decision(10, 150_000, 50_000),
        );
        assert_eq!(w.saving_ewma_ns(), Some(10_000.0));
        // A second observation moves the EWMA by the smoothing factor.
        w.observe_flush(
            FlushCause::Capacity,
            10,
            64,
            &range_decision(10, 50_000, 50_000),
        );
        let ewma = w.saving_ewma_ns().unwrap();
        assert!(ewma > 6_000.0 && ewma < 8_000.0, "ewma = {ewma}");
    }

    #[test]
    fn worthless_fusion_collapses_the_window_to_the_min() {
        let mut w = WindowController::new(MIN, MAX);
        for _ in 0..4 {
            w.observe_flush(FlushCause::Capacity, 64, 64, &no_decisions());
        }
        assert_eq!(w.window_ns(), MAX);
        // The model predicts fusion costs MORE than sequential (scattered
        // workload): the gate overrides the rate rule.
        w.observe_flush(
            FlushCause::Capacity,
            64,
            64,
            &range_decision(64, 50_000, 90_000),
        );
        assert_eq!(w.window_ns(), MIN);
        // And it stays collapsed while the prediction holds.
        w.observe_flush(
            FlushCause::Capacity,
            64,
            64,
            &range_decision(64, 50_000, 90_000),
        );
        assert_eq!(w.window_ns(), MIN);
    }

    #[test]
    fn batches_without_range_estimates_leave_the_ewma_alone() {
        let mut w = WindowController::new(MIN, MAX);
        w.observe_flush(FlushCause::Capacity, 32, 64, &no_decisions());
        assert_eq!(w.saving_ewma_ns(), None);
        assert!(
            w.window_ns() > MIN,
            "the gate must not fire without evidence"
        );
    }

    #[test]
    fn zero_window_is_floored_at_one_nanosecond() {
        // `fixed_window(Duration::ZERO)` ends up here: both bounds zero.
        let w = WindowController::new(0, 0);
        assert_eq!(w.window_ns(), 1);
        let mut w = WindowController::new(0, 0);
        w.observe_flush(FlushCause::Capacity, 64, 64, &no_decisions());
        assert_eq!(w.window_ns(), 1, "a degenerate window cannot grow");
        w.observe_flush(FlushCause::Timer, 1, 64, &no_decisions());
        assert_eq!(w.window_ns(), 1, "nor shrink below the floor");
    }

    #[test]
    fn equal_min_max_pins_the_window_under_every_rule() {
        let mut w = WindowController::new(MIN, MIN);
        w.observe_flush(FlushCause::Capacity, 64, 64, &no_decisions());
        assert_eq!(w.window_ns(), MIN, "capacity growth is clamped");
        w.observe_flush(FlushCause::Timer, 1, 64, &no_decisions());
        assert_eq!(w.window_ns(), MIN, "timer shrink is clamped");
        // Even the cost gate cannot move a pinned window anywhere else.
        w.observe_flush(FlushCause::Timer, 1, 64, &range_decision(64, 0, 90_000));
        assert_eq!(w.window_ns(), MIN);
    }

    #[test]
    fn inverted_bounds_are_reordered() {
        // max below min: the controller floors max at min.
        let mut w = WindowController::new(4_000, 2_000);
        assert_eq!(w.window_ns(), 4_000);
        w.observe_flush(FlushCause::Capacity, 64, 64, &no_decisions());
        assert_eq!(w.window_ns(), 4_000);
    }

    #[test]
    fn the_gate_never_fires_before_the_first_estimate() {
        // With no prior samples the EWMA is None: even a long run of
        // estimate-free flushes must leave the rate rule fully in charge.
        let mut w = WindowController::new(MIN, MAX);
        for _ in 0..8 {
            w.observe_flush(FlushCause::Capacity, 64, 64, &no_decisions());
        }
        assert_eq!(w.saving_ewma_ns(), None);
        assert_eq!(w.window_ns(), MAX);
    }

    #[test]
    fn degraded_batches_interleave_without_stalling_adaptation() {
        // A degraded (panic-recovered) batch reports default decisions —
        // no estimate. It must count for the rate rule (its flush cause is
        // real) while leaving the benefit EWMA untouched, so adaptation
        // resumes seamlessly when healthy batches return.
        let mut w = WindowController::new(MIN, MAX);
        w.observe_flush(
            FlushCause::Capacity,
            64,
            64,
            &range_decision(64, 900_000, 100_000),
        );
        let ewma_before = w.saving_ewma_ns().unwrap();
        assert_eq!(w.window_ns(), 2_000);
        // The degraded batch: capacity cut, no decisions.
        w.observe_flush(FlushCause::Capacity, 64, 64, &no_decisions());
        assert_eq!(w.window_ns(), 4_000, "rate rule still applies");
        assert_eq!(
            w.saving_ewma_ns(),
            Some(ewma_before),
            "EWMA must not decay across a degraded batch"
        );
        // Healthy traffic resumes and keeps adapting from where it left.
        w.observe_flush(
            FlushCause::Capacity,
            64,
            64,
            &range_decision(64, 900_000, 100_000),
        );
        assert_eq!(w.window_ns(), 8_000);
        assert!(w.saving_ewma_ns().unwrap() >= ewma_before);
    }
}
