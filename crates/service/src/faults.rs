//! Deterministic fault injection for the service (the chaos harness).
//!
//! A [`FaultPlan`] maps *submission sequence numbers* (the order in which
//! the service accepted queries, starting at 0) to faults, and the service
//! consults it at four failpoints:
//!
//! * [`Fault::KernelPanic`] fires inside the worker's panic-isolation
//!   boundary, on **every** execution attempt that includes the faulty
//!   query — the coalesced batch pass panics, and during the degraded
//!   one-by-one re-execution only the faulty query panics again, so the
//!   fault resolves exactly like a deterministic kernel bug:
//!   [`crate::ServiceError::ExecutionPanicked`] for the poisoning query,
//!   bit-identical answers for everyone else.
//! * [`Fault::ExecDelay`] sleeps before the batch executes — a slow kernel
//!   or a scheduling stall, for exercising deadlines and timeouts.
//! * [`Fault::QueueStall`] sleeps *inside* `submit` while the queue mutex
//!   is held — a stalled producer wedging the queue.
//! * [`Fault::WorkerKill`] panics in the worker loop **outside** the
//!   isolation boundary, while the queue guard is still held: the worker
//!   dies with its drained batch's tickets (they resolve to
//!   [`crate::ServiceError::WorkerDied`]), the queue mutex is poisoned
//!   (every other lock site recovers the guard), and the supervisor
//!   respawns the worker. This is the fault the supervision layer exists
//!   for.
//!
//! Plans are either explicit ([`FaultPlan::new`] + [`FaultPlan::with`]) or
//! seeded ([`FaultPlan::seeded`]): a splitmix64-derived schedule over the
//! first three fault kinds, deterministic per seed, for chaos-test
//! matrices. The module is compiled behind the `fault-injection` feature
//! (on by default); without an installed plan every failpoint is a single
//! `Option` check.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One injectable fault, keyed by the submission sequence number of the
/// query it poisons. See the module docs for where each kind fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Fault {
    /// Panic inside the execution boundary whenever an attempt includes
    /// the faulty query (batch pass and its own solo re-execution).
    KernelPanic,
    /// Sleep this long before executing any batch containing the query.
    ExecDelay(Duration),
    /// Sleep this long inside `submit` while the queue mutex is held.
    QueueStall(Duration),
    /// Panic in the worker loop outside the isolation boundary, with the
    /// queue guard held, right after the batch containing the query was
    /// drained: kills the worker and poisons the queue mutex.
    WorkerKill,
}

/// A deterministic schedule of faults over submission sequence numbers.
///
/// Installed into a service via `ServiceBuilder::fault_plan`; shared with
/// every worker and submitter. The injection counters are interior-mutable
/// atomics so tests can assert how many faults actually fired.
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: BTreeMap<u64, Fault>,
    injected: AtomicU64,
}

impl FaultPlan {
    /// An empty plan (no faults; every failpoint is a no-op).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) the fault for submission number `seq`.
    pub fn with(mut self, seq: u64, fault: Fault) -> Self {
        self.faults.insert(seq, fault);
        self
    }

    /// A seeded plan: `count` faults spread deterministically over the
    /// first `n_queries` submission numbers, cycling through kernel
    /// panics, execution delays and queue stalls (the three kinds that
    /// leave the worker pool intact; [`Fault::WorkerKill`] is only ever
    /// injected explicitly). Equal seeds give equal plans.
    pub fn seeded(seed: u64, n_queries: u64, count: usize) -> Self {
        let mut plan = FaultPlan::new();
        if n_queries == 0 {
            return plan;
        }
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut placed = 0usize;
        // Rejection-free: walk splitmix outputs, skipping occupied slots.
        while placed < count && (plan.faults.len() as u64) < n_queries {
            let seq = splitmix64(&mut state) % n_queries;
            if plan.faults.contains_key(&seq) {
                continue;
            }
            let fault = match placed % 3 {
                0 => Fault::KernelPanic,
                1 => Fault::ExecDelay(Duration::from_micros(200 + splitmix64(&mut state) % 800)),
                _ => Fault::QueueStall(Duration::from_micros(100 + splitmix64(&mut state) % 400)),
            };
            plan.faults.insert(seq, fault);
            placed += 1;
        }
        plan
    }

    /// The fault planned for submission number `seq`, if any.
    pub fn fault_for(&self, seq: u64) -> Option<Fault> {
        self.faults.get(&seq).copied()
    }

    /// The planned (seq, fault) pairs in sequence order.
    pub fn schedule(&self) -> impl Iterator<Item = (u64, Fault)> + '_ {
        self.faults.iter().map(|(&seq, &fault)| (seq, fault))
    }

    /// Submission numbers carrying a [`Fault::KernelPanic`] — the queries a
    /// chaos test expects to resolve as `ExecutionPanicked`.
    pub fn kernel_panics(&self) -> Vec<u64> {
        self.faults
            .iter()
            .filter(|(_, f)| matches!(f, Fault::KernelPanic))
            .map(|(&seq, _)| seq)
            .collect()
    }

    /// How many faults have fired so far (all kinds).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn record(&self) {
        self.injected.fetch_add(1, Ordering::Relaxed);
    }
}

/// Fixed-increment splitmix64 step: the statelessly seedable generator the
/// workload crate uses, inlined here so the service stays dependency-free.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Failpoint: stall the submitting thread (queue mutex held by the caller).
pub(crate) fn stall_on_submit(plan: &Option<std::sync::Arc<FaultPlan>>, seq: u64) {
    if let Some(plan) = plan {
        if let Some(Fault::QueueStall(delay)) = plan.fault_for(seq) {
            plan.record();
            std::thread::sleep(delay);
        }
    }
}

/// Failpoint: kill the worker that just drained a batch containing a
/// [`Fault::WorkerKill`] query. The caller holds the queue guard, so the
/// panic poisons the mutex — deliberately: recovery from the poisoned
/// guard is part of what the harness verifies.
pub(crate) fn kill_worker_if_planned(plan: &Option<std::sync::Arc<FaultPlan>>, seqs: &[u64]) {
    if let Some(plan) = plan {
        for &seq in seqs {
            if plan.fault_for(seq) == Some(Fault::WorkerKill) {
                plan.record();
                panic!("injected worker kill (fault plan, submission #{seq})");
            }
        }
    }
}

/// Failpoint: delay and/or panic before a coalesced batch executes. Runs
/// inside the worker's panic-isolation boundary.
pub(crate) fn delay_and_panic_if_planned(plan: &Option<std::sync::Arc<FaultPlan>>, seqs: &[u64]) {
    if let Some(plan) = plan {
        for &seq in seqs {
            if let Some(Fault::ExecDelay(delay)) = plan.fault_for(seq) {
                plan.record();
                std::thread::sleep(delay);
            }
        }
        for &seq in seqs {
            if plan.fault_for(seq) == Some(Fault::KernelPanic) {
                plan.record();
                panic!("injected kernel panic (fault plan, submission #{seq})");
            }
        }
    }
}

/// Failpoint: panic during the degraded one-by-one re-execution of the
/// query that carries the kernel-panic fault (and only that one).
pub(crate) fn panic_if_planned_solo(plan: &Option<std::sync::Arc<FaultPlan>>, seq: u64) {
    if let Some(plan) = plan {
        if plan.fault_for(seq) == Some(Fault::KernelPanic) {
            plan.record();
            panic!("injected kernel panic (fault plan, solo re-execution of #{seq})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_bounded() {
        let a = FaultPlan::seeded(42, 100, 10);
        let b = FaultPlan::seeded(42, 100, 10);
        assert_eq!(
            a.schedule().collect::<Vec<_>>(),
            b.schedule().collect::<Vec<_>>()
        );
        assert_eq!(a.schedule().count(), 10);
        assert!(a.schedule().all(|(seq, _)| seq < 100));
        // All three seedable kinds appear; WorkerKill never does.
        assert!(!a.kernel_panics().is_empty());
        assert!(a.schedule().any(|(_, f)| matches!(f, Fault::ExecDelay(_))));
        assert!(a.schedule().any(|(_, f)| matches!(f, Fault::QueueStall(_))));
        assert!(a.schedule().all(|(_, f)| f != Fault::WorkerKill));
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::seeded(1, 1_000, 8);
        let b = FaultPlan::seeded(2, 1_000, 8);
        assert_ne!(
            a.schedule().collect::<Vec<_>>(),
            b.schedule().collect::<Vec<_>>()
        );
    }

    #[test]
    fn degenerate_plans_are_safe() {
        assert_eq!(FaultPlan::seeded(7, 0, 5).schedule().count(), 0);
        // More faults than slots: fills every slot and stops.
        assert_eq!(FaultPlan::seeded(7, 3, 100).schedule().count(), 3);
        assert_eq!(FaultPlan::new().fault_for(0), None);
    }

    #[test]
    fn explicit_plans_register_and_count() {
        let plan = FaultPlan::new()
            .with(3, Fault::KernelPanic)
            .with(5, Fault::WorkerKill);
        assert_eq!(plan.fault_for(3), Some(Fault::KernelPanic));
        assert_eq!(plan.fault_for(5), Some(Fault::WorkerKill));
        assert_eq!(plan.kernel_panics(), vec![3]);
        assert_eq!(plan.injected(), 0);
        let shared = Some(std::sync::Arc::new(plan));
        stall_on_submit(&shared, 3); // wrong kind: no fire
        assert_eq!(shared.as_ref().unwrap().injected(), 0);
        let caught = std::panic::catch_unwind(|| panic_if_planned_solo(&shared, 3));
        assert!(caught.is_err());
        assert_eq!(shared.as_ref().unwrap().injected(), 1);
    }
}
