//! Service tunables: queue bound, batch bound, window bounds, worker pool,
//! backpressure policy and batch strategy.

use std::time::Duration;

use wazi_core::BatchStrategy;

/// What [`crate::Service::submit`] does when the bounded submission queue is
/// at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FullQueuePolicy {
    /// Block the submitting thread until a worker drains space (lossless;
    /// the client's own submission rate becomes the backpressure signal).
    #[default]
    Block,
    /// Return [`crate::Submit::Rejected`] immediately and count the query
    /// as shed (load shedding; the client decides whether to retry).
    Reject,
}

/// Tunables of a [`crate::Service`] instance.
///
/// Built through [`crate::ServiceBuilder`]; the defaults serve a mixed
/// workload reasonably on any host. All bounds are floored at sane minima
/// by the builder (capacities at 1, `max_window` at `min_window`).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum number of queries waiting in the submission queue. Arrivals
    /// beyond it are handled per [`ServiceConfig::on_full`].
    pub queue_capacity: usize,
    /// Maximum number of queries coalesced into one engine batch. A queue
    /// reaching this depth flushes immediately (capacity cut). `1` turns
    /// the service into a per-query dispatcher (no coalescing, no window
    /// adaptation) — the baseline the bench compares against.
    pub max_batch: usize,
    /// Lower bound (and starting value) of the adaptive coalescing window.
    pub min_window: Duration,
    /// Upper bound of the adaptive coalescing window.
    pub max_window: Duration,
    /// Worker threads executing coalesced batches. Defaults to the host's
    /// `available_parallelism`.
    pub workers: usize,
    /// Backpressure policy when the submission queue is full.
    pub on_full: FullQueuePolicy,
    /// Batch strategy handed to the [`wazi_core::QueryEngine`] for every
    /// coalesced batch. Defaults to [`BatchStrategy::Auto`], the calibrated
    /// cost model.
    pub strategy: BatchStrategy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 1024,
            max_batch: 256,
            min_window: Duration::from_micros(50),
            max_window: Duration::from_millis(5),
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            on_full: FullQueuePolicy::default(),
            strategy: BatchStrategy::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = ServiceConfig::default();
        assert!(cfg.queue_capacity >= cfg.max_batch);
        assert!(cfg.min_window <= cfg.max_window);
        assert!(cfg.workers >= 1);
        assert_eq!(cfg.on_full, FullQueuePolicy::Block);
        assert_eq!(cfg.strategy, BatchStrategy::Auto);
    }
}
