//! # wazi
//!
//! Facade crate of the WaZI reproduction (Pai, Mathioudakis & Wang,
//! EDBT 2024). It re-exports the workspace crates so simple consumers can
//! depend on a single crate, and it owns the repository-level integration
//! tests (`tests/`) and runnable examples (`examples/`).
//!
//! The layering, bottom to top (see ROADMAP.md, "Architecture"):
//!
//! * [`geom`] — points, rectangles, quadrant/ordering geometry, Morton codes;
//! * [`storage`] — clustered pages with visitor-based scan primitives and
//!   the [`storage::ExecStats`] work counters;
//! * [`density`] — RFDE cardinality estimation used during construction;
//! * [`core`] — the generalized Z-index (Base and WaZI), the
//!   [`core::SpatialIndex`] trait with its layered query-execution engine,
//!   and the typed query-plan [`core::QueryEngine`] with sequential and
//!   fused batch execution;
//! * [`baselines`] — the six competitor indexes of the evaluation;
//! * [`workload`] — deterministic dataset and query-workload generators,
//!   including the open-loop arrival schedules driving the service bench;
//! * [`service`] — the concurrent query service coalescing submissions
//!   into fused engine batches under an adaptive micro-batching window
//!   (`docs/SERVICE.md`);
//! * [`net`] — the hardened TCP front end over the service: checksummed
//!   length-prefixed framing, per-connection deadlines, graceful drain,
//!   a retrying client, and wire-level fault injection — the wire
//!   changes transport, never answers;
//! * [`mod@bench`] — the experiment harness reproducing every table and
//!   figure, including the `batch` experiment comparing sequential vs fused
//!   batch execution (`BENCH_batch.json`) and the `service` experiment
//!   measuring the service under offered load (`BENCH_service.json`).
//!
//! Entry points for humans: the repository README for the quickstart and
//! pointer map, `docs/ENGINE.md` for the batch-execution pipeline guide,
//! and `ROADMAP.md` for the architecture narrative and open items.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use wazi_baselines as baselines;
pub use wazi_bench as bench;
pub use wazi_core as core;
pub use wazi_density as density;
pub use wazi_geom as geom;
pub use wazi_net as net;
pub use wazi_service as service;
pub use wazi_storage as storage;
pub use wazi_workload as workload;

// The types almost every consumer needs, flattened to the crate root.
pub use wazi_core::{
    BatchReport, BatchStrategy, EngineError, Query, QueryEngine, QueryOutput, QueryReport,
    RangeMode, SpatialIndex, ZIndex, ZIndexBuilder, ZIndexConfig,
};
pub use wazi_geom::{Point, Rect};
pub use wazi_net::{Client, NetError, Server};
pub use wazi_service::{Service, ServiceStats};
pub use wazi_storage::ExecStats;
