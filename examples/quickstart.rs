//! Quickstart: build a WaZI index for a dataset and an anticipated workload,
//! run range / point / kNN queries and inspect the work counters.
//!
//! Run with:
//! ```text
//! cargo run --release -p wazi-bench --example quickstart
//! ```

use wazi_core::{Query, QueryEngine, QueryOutput, SpatialIndex, ZIndex};
use wazi_geom::Point;
use wazi_storage::ExecStats;
use wazi_workload::{generate_dataset, generate_queries, Region, SELECTIVITIES};

fn main() {
    // 1. A dataset and an anticipated range-query workload. In a real system
    //    the workload would come from historical query logs; here we use the
    //    synthetic NewYork profile of the evaluation (skewed data, a query
    //    distribution skewed differently).
    let points = generate_dataset(Region::NewYork, 100_000);
    let workload = generate_queries(Region::NewYork, 2_000, SELECTIVITIES[1]);
    println!(
        "dataset: {} points, workload: {} queries at {:.4}% selectivity",
        points.len(),
        workload.len(),
        SELECTIVITIES[1] * 100.0
    );

    // 2. Build the workload-aware index. `build_wazi` uses the paper's
    //    defaults: leaf capacity 256, 16 sampled candidate splits per cell,
    //    RFDE cardinality estimation and look-ahead skipping.
    let start = std::time::Instant::now();
    let index = ZIndex::build_wazi(points.clone(), &workload);
    println!(
        "built {} in {:.2?}: {} leaves, {} internal nodes, height {}, {:.0}% of cells use the alternative ordering",
        index.name(),
        start.elapsed(),
        index.leaf_count(),
        index.internal_count(),
        index.height(),
        index.acbd_fraction() * 100.0
    );

    // 3. Queries go through the typed query-plan engine: describe the
    //    operation as a `Query`, get back a report carrying the output, the
    //    work counters and the wall-clock latency — no ExecStats threading.
    let engine = QueryEngine::new(&index);
    let query = workload[0];
    let report = engine.execute(&Query::range(query)).expect("finite query");
    println!(
        "range query {query}: {} results, {} bounding boxes checked, {} pages scanned, {} points compared, {} leaves skipped",
        report.output.result_count(),
        report.stats.bbs_checked,
        report.stats.pages_scanned,
        report.stats.points_scanned,
        report.stats.leaves_skipped
    );

    // 4. Point query and kNN are plans too (kNN is answered by growing range
    //    queries, the strategy the paper describes for non-specialised
    //    spatial indexes).
    let probe = points[12_345];
    let found = engine.execute(&Query::point(probe)).expect("finite probe");
    println!("point query {probe}: {:?}", found.output);
    let center = Point::new(0.5, 0.5);
    let knn = engine
        .execute(&Query::knn(center, 5))
        .expect("finite centre");
    if let QueryOutput::Neighbors(neighbours) = &knn.output {
        println!("5 nearest neighbours of {center}:");
        for n in neighbours {
            println!("  {n} (distance {:.4})", n.distance(&center));
        }
    }

    // 5. The index remains updatable: inserts go to the leaf whose cell
    //    contains the point, splitting it when the page overflows.
    let mut index = index;
    index.insert(Point::new(0.501, 0.499)).expect("insert");
    index.maintain();
    let mut stats = ExecStats::default();
    assert!(index.point_query(&Point::new(0.501, 0.499), &mut stats));
    println!("after insert: {} points indexed", index.len());

    // 6. Compare against the workload-agnostic base Z-index on the same
    //    workload: same answers, more work.
    let base = ZIndex::build_base(points);
    let mut wazi_stats = ExecStats::default();
    let mut base_stats = ExecStats::default();
    for q in workload.iter().take(500) {
        index.range_query(q, &mut wazi_stats);
        base.range_query(q, &mut base_stats);
    }
    println!(
        "500 workload queries — WaZI: {} bbs + {} points, Base: {} bbs + {} points",
        wazi_stats.bbs_checked,
        wazi_stats.points_scanned,
        base_stats.bbs_checked,
        base_stats.points_scanned
    );
}
