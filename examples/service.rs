//! Quickstart for the concurrent query service: share one index across
//! client threads, let submissions coalesce under the adaptive
//! micro-batching window, and read the answers back off completion
//! tickets — bit-identical to running each query alone, but executed as
//! fused batches sized by the arrival rate.
//!
//! Run with:
//! ```text
//! cargo run --release --example service
//! ```

use std::sync::Arc;
use std::time::Duration;

use wazi_core::{QueryOutput, SpatialIndex, ZIndex};
use wazi_service::{FullQueuePolicy, Service, Submit};
use wazi_workload::{
    generate_dataset, generate_mixed_batch, generate_queries, poisson_arrivals, Region,
    SELECTIVITIES,
};

fn main() {
    // 1. Build the workload-aware index exactly as in `quickstart.rs`,
    //    then put it behind an Arc: every query method takes `&self`, so
    //    one index serves every client and worker without copies.
    let region = Region::NewYork;
    let points = generate_dataset(region, 100_000);
    let train = generate_queries(region, 2_000, SELECTIVITIES[2]);
    let index: Arc<dyn SpatialIndex> = Arc::new(ZIndex::build_wazi(points, &train));

    // 2. Start the service. The builder holds the whole configuration
    //    surface: queue bound, batch ceiling, adaptive window range, what
    //    to do when the queue is full, and the engine strategy batches
    //    execute under (the cost-based Auto default picks per partition).
    let service = Service::builder(Arc::clone(&index))
        .queue_capacity(1024)
        .max_batch(256)
        .window(Duration::from_micros(50), Duration::from_millis(5))
        .on_full(FullQueuePolicy::Block)
        .start();
    println!("service up: {:?}", service.config());

    // 3. Clients submit `Query` values and get a ticket per submission.
    //    A deterministic Poisson schedule stands in for real traffic;
    //    three client threads replay disjoint slices of it concurrently.
    const CLIENTS: usize = 3;
    let batch = generate_mixed_batch(region, 3_000, SELECTIVITIES[3], 42);
    let arrivals = poisson_arrivals(batch, 50_000.0, 7);
    let answered: Vec<(usize, QueryOutput)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let service = &service;
                let arrivals = &arrivals;
                s.spawn(move || {
                    let tickets: Vec<_> = arrivals
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % CLIENTS == client)
                        .map(|(i, arrival)| {
                            // Block policy: submit never sheds, it waits
                            // for queue space instead.
                            match service.submit(arrival.query.clone()) {
                                Ok(Submit::Accepted(ticket)) => (i, ticket),
                                Ok(Submit::Rejected) | Err(_) => {
                                    unreachable!("blocking service refused a valid query")
                                }
                            }
                        })
                        .collect();
                    // 4. Redeem the tickets. Each response carries the
                    //    solo-identical answer plus the batch it rode in:
                    //    size, engine latency, fused-plan counts and the
                    //    cost model's per-partition decisions.
                    tickets
                        .into_iter()
                        .map(|(i, ticket)| {
                            let response = ticket.wait().expect("service answers");
                            if i == 0 {
                                println!(
                                    "first response: {} queries in its batch, \
                                     {} fused, queued {:.1} us",
                                    response.batch.size,
                                    response.batch.fused_queries,
                                    response.queue_ns as f64 / 1e3
                                );
                            }
                            (i, response.report.output)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    println!(
        "{} queries answered across {CLIENTS} clients",
        answered.len()
    );

    // 5. Graceful shutdown drains everything still queued and returns the
    //    final counters: how many batches the window formed, how they were
    //    cut (capacity / timer / shutdown), queue-wait percentiles' raw
    //    material, and where the adaptive window ended up.
    let stats = service.shutdown();
    println!(
        "{} batches (mean size {:.1}, max {}), cuts: {} capacity / {} timer / {} shutdown",
        stats.batches,
        stats.mean_batch_size(),
        stats.max_batch_size,
        stats.flushed_on_capacity,
        stats.flushed_on_timer,
        stats.flushed_on_shutdown
    );
    println!(
        "mean queue wait {:.1} us, window ended at {:.1} us",
        stats.mean_queue_wait_ns() / 1e3,
        stats.window_ns as f64 / 1e3
    );

    // 6. The service guarantee, spot-checked: every routed answer equals a
    //    solo execution of the same query on the same index.
    let engine = wazi_core::QueryEngine::new(index.as_ref());
    for (i, output) in answered.iter().take(200) {
        let solo = engine.execute(&arrivals[*i].query).expect("valid query");
        assert_eq!(output, &solo.output, "response {i} diverged");
    }
    println!("spot-check passed: responses are bit-identical to solo execution");
}
