//! Quickstart for the typed query-plan engine: describe a workload as
//! `Query` values, execute it as one batch, and compare the sequential
//! schedule against WaZI's fused kernels — the whole mixed batch is
//! partitioned by plan type (range / point probe / kNN) and every
//! partition executes fused, single-threaded or sharded across worker
//! threads.
//!
//! Run with:
//! ```text
//! cargo run --release --example batch_queries
//! ```

use wazi_core::{BatchStrategy, QueryEngine, QueryOutput, ZIndex};
use wazi_workload::{
    generate_dataset, generate_mixed_batch, generate_overlapping_batch, generate_queries, Region,
    SELECTIVITIES,
};

fn main() {
    // 1. Build the workload-aware index exactly as in `quickstart.rs`.
    let region = Region::NewYork;
    let points = generate_dataset(region, 100_000);
    let train = generate_queries(region, 2_000, SELECTIVITIES[2]);
    let index = ZIndex::build_wazi(points, &train);

    // 2. A workload is data, not code: a deterministic mixed batch of range
    //    queries (collect / count / stream), point probes and kNN lookups.
    let batch = generate_mixed_batch(region, 1_000, SELECTIVITIES[3], 42);
    let ranges = batch.iter().filter(|q| q.is_range()).count();
    println!(
        "batch: {} queries ({} range, {} point/kNN)",
        batch.len(),
        ranges,
        batch.len() - ranges
    );

    // 3. The engine owns the ExecStats plumbing: one call, one report per
    //    query plus sound batch-level aggregates.
    let engine = QueryEngine::new(&index);
    let sequential = engine.execute_batch(&batch).expect("valid batch");
    println!(
        "sequential: {} results, {} pages scanned, {} points compared, {:.2} ms",
        sequential.total_results(),
        sequential.merged_stats().pages_scanned,
        sequential.merged_stats().points_scanned,
        sequential.latency_ns as f64 / 1e6
    );

    // 4. The fused strategy answers identically but partitions the batch by
    //    plan type and routes every partition through a fused kernel: range
    //    plans share one leaf-interval sweep, point probes are grouped by
    //    owning leaf (each hot page fetched once however many probes hit
    //    it), and kNN plans run through grouped expanding-ring sweeps that
    //    scan each candidate page once per ring.
    let fused_engine = QueryEngine::new(&index).with_strategy(BatchStrategy::Fused);
    let fused = fused_engine.execute_batch(&batch).expect("valid batch");
    assert_eq!(fused.total_results(), sequential.total_results());
    println!(
        "fused:      {} results, {} pages scanned ({} range / {} point / {} kNN plans fused), {:.2} ms",
        fused.total_results(),
        fused.merged_stats().pages_scanned,
        fused.fused_queries,
        fused.fused_points,
        fused.fused_knn,
        fused.latency_ns as f64 / 1e6
    );
    println!(
        "shared work per partition: range {} / point {} / kNN {} pages",
        fused.range_shared_stats.pages_scanned,
        fused.point_shared_stats.pages_scanned,
        fused.knn_shared_stats.pages_scanned
    );
    let saved = sequential.merged_stats().pages_scanned - fused.merged_stats().pages_scanned;
    println!(
        "fusion saved {saved} page visits ({:.1}% of the sequential scan volume)",
        100.0 * saved as f64 / sequential.merged_stats().pages_scanned.max(1) as f64
    );

    // 5. When an overlapping batch is large enough to amortize thread
    //    spawning, FusedParallel partitions the fused sweep's leaf span
    //    into work-balanced shards and sweeps them concurrently. Answers
    //    stay bit-identical — shards are disjoint slices of the leaf list,
    //    merged deterministically in sweep order.
    let big_batch = generate_overlapping_batch(region, 4_000, SELECTIVITIES[3], 7);
    let fused_one = QueryEngine::new(&index)
        .with_strategy(BatchStrategy::Fused)
        .execute_batch(&big_batch)
        .expect("valid batch");
    for shards in [2usize, 4, 8] {
        let parallel = QueryEngine::new(&index)
            .with_strategy(BatchStrategy::FusedParallel { shards })
            .execute_batch(&big_batch)
            .expect("valid batch");
        assert_eq!(parallel.total_results(), fused_one.total_results());
        println!(
            "fused sweep of {} overlapping queries on {} shard(s): {:.2} ms \
             ({:.2}x vs one shard)",
            big_batch.len(),
            parallel.shards_used,
            parallel.latency_ns as f64 / 1e6,
            fused_one.latency_ns as f64 / parallel.latency_ns.max(1) as f64
        );
    }

    // 6. Per-query reports keep their input order, so answers pair up with
    //    their plans without bookkeeping.
    for (query, report) in batch.iter().zip(&fused.reports).take(5) {
        let answer = match &report.output {
            QueryOutput::Points(points) => format!("{} points", points.len()),
            QueryOutput::Count(n) => format!("count = {n}"),
            QueryOutput::Streamed(n) => format!("streamed {n}"),
            QueryOutput::Found(found) => format!("found = {found}"),
            QueryOutput::Neighbors(points) => format!("{} neighbours", points.len()),
        };
        println!("  {query:?} -> {answer}");
    }
}
