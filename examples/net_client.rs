//! Resilient TCP client for the query service: connect to a running
//! `net_server`, replay a deterministic mixed workload, and let the
//! retry layer absorb transient wire trouble — timeouts, severed
//! connections, checksum mismatches, `Rejected` backpressure.
//!
//! Start the server first, then run with its printed address:
//! ```text
//! cargo run --release --example net_server
//! cargo run --release --example net_client -- 127.0.0.1:PORT
//! ```

use std::time::{Duration, Instant};

use wazi_core::QueryOutput;
use wazi_net::{Client, ClientConfig, NetError};
use wazi_workload::{generate_mixed_batch, Region, SELECTIVITIES};

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());

    // 1. The client is configured for resilience, not raw speed: every
    //    transient failure is retried with exponential backoff and jitter,
    //    and `Rejected` frames (the server's typed 429) count as transient
    //    too, so saturation delays the workload instead of failing it.
    let config = ClientConfig {
        connect_timeout: Duration::from_secs(1),
        request_timeout: Duration::from_secs(10),
        max_retries: 6,
        backoff_base: Duration::from_millis(20),
        backoff_max: Duration::from_secs(1),
        retry_rejected: true,
        ..ClientConfig::default()
    };
    let client = match Client::connect(&addr, config) {
        Ok(client) => client,
        Err(err) => {
            eprintln!("could not reach {addr}: {err}");
            eprintln!("start the server first: cargo run --release --example net_server");
            std::process::exit(1);
        }
    };
    println!("connected to {addr}");

    // 2. The queries are plain geometry — the client needs no copy of the
    //    dataset or the index. The same deterministic generator the server
    //    examples use keeps runs comparable across processes.
    let queries = generate_mixed_batch(Region::NewYork, 500, SELECTIVITIES[3], 42);

    // 3. Replay. Each call blocks until the response frame for this
    //    request id arrives; retries and reconnects happen inside.
    let started = Instant::now();
    let mut answered = 0u64;
    let mut rows = 0u64;
    for query in &queries {
        match client.request(query.clone()) {
            Ok(response) => {
                answered += 1;
                rows += match &response.report.output {
                    QueryOutput::Points(points) => points.len() as u64,
                    QueryOutput::Count(count) => *count,
                    _ => 1,
                };
            }
            // A non-transient error (or retry exhaustion) surfaces here;
            // the service's typed errors arrive intact over the wire.
            Err(NetError::Service(err)) => eprintln!("service error: {err}"),
            Err(err) => eprintln!("gave up on a request: {err}"),
        }
    }

    // 4. The resilience counters tell you what the wire did to you — and
    //    what the retry layer absorbed before you ever saw it.
    println!(
        "{answered}/{} answered ({rows} rows/counts) in {:.1} ms",
        queries.len(),
        started.elapsed().as_secs_f64() * 1e3
    );
    println!(
        "retries {}, reconnects {}, rejections seen {}, duplicates dropped {}",
        client.retries(),
        client.reconnects(),
        client.rejections_seen(),
        client.duplicates_dropped()
    );
}
