//! Workload drift: what happens to a workload-aware index when the queries
//! it was optimised for stop arriving?
//!
//! Reproduces the Figure 12 scenario interactively: WaZI and Base are built
//! for the NewYork check-in workload, then evaluated as the workload drifts
//! towards (a) uniform queries and (b) the Japan check-in workload.
//!
//! Run with:
//! ```text
//! cargo run --release -p wazi-bench --example workload_drift
//! ```

use wazi_bench::measure::{format_ns, measure_range_queries};
use wazi_bench::{build_index, IndexKind};
use wazi_workload::{
    drift_workload, generate_dataset, generate_queries_with_seed, uniform_queries, Region,
    SELECTIVITIES,
};

fn main() {
    let region = Region::NewYork;
    let selectivity = SELECTIVITIES[2];
    let points = generate_dataset(region, 80_000);
    let train = generate_queries_with_seed(region, 2_000, selectivity, 1);
    let original = generate_queries_with_seed(region, 1_000, selectivity, 2);

    let base = build_index(IndexKind::Base, &points, &train, 256);
    let wazi = build_index(IndexKind::Wazi, &points, &train, 256);

    let uniform = uniform_queries(1_000, selectivity, 3);
    let foreign = generate_queries_with_seed(Region::Japan, 1_000, selectivity, 4);

    for (label, replacement) in [
        ("uniform", &uniform),
        ("differently skewed (Japan)", &foreign),
    ] {
        println!("drift towards a {label} workload:");
        println!(
            "{:>9} {:>12} {:>12} {:>12}",
            "% change", "Base", "WaZI", "WaZI/Base"
        );
        for change in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let drifted = drift_workload(&original, replacement, change, 5);
            let base_m = measure_range_queries(base.index.as_ref(), &drifted);
            let wazi_m = measure_range_queries(wazi.index.as_ref(), &drifted);
            println!(
                "{:>8.0}% {:>12} {:>12} {:>12.2}",
                change * 100.0,
                format_ns(base_m.mean_latency_ns),
                format_ns(wazi_m.mean_latency_ns),
                wazi_m.mean_latency_ns / base_m.mean_latency_ns
            );
        }
        println!();
    }
    println!("WaZI degrades gracefully towards uniform workloads (its layout and skipping still");
    println!("help) but can fall behind Base once most queries follow a different skew — the");
    println!("signal that the index should be rebuilt for the new workload (Section 6.8).");
}
