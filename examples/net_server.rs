//! TCP front end for the concurrent query service: build the
//! workload-aware index, put the service behind `wazi_net::Server`, and
//! answer framed queries from any number of `net_client` processes.
//!
//! Run with (then point `net_client` at the printed address):
//! ```text
//! cargo run --release --example net_server
//! ```
//!
//! The server owns the whole stack — index, micro-batching service,
//! acceptor, per-connection threads — and the wire guarantee holds
//! end to end: the wire changes transport, never answers. Press Enter
//! (or close stdin) to drain in-flight requests and shut down.

use std::sync::Arc;
use std::time::Duration;

use wazi_core::{SpatialIndex, ZIndex};
use wazi_net::Server;
use wazi_service::{FullQueuePolicy, Service};
use wazi_workload::{generate_dataset, generate_queries, Region, SELECTIVITIES};

fn main() -> std::io::Result<()> {
    // 1. The index is the same one every other quickstart builds; the
    //    transport layer never sees points or pages, only framed queries.
    let region = Region::NewYork;
    let points = generate_dataset(region, 100_000);
    let train = generate_queries(region, 2_000, SELECTIVITIES[2]);
    let index: Arc<dyn SpatialIndex> = Arc::new(ZIndex::build_wazi(points, &train));

    // 2. The service behind the socket is configured exactly as in the
    //    in-process example. `Block` keeps the wire lossless under load:
    //    submissions wait for queue space instead of shedding, so clients
    //    only ever see `Rejected` frames from the `Reject` policy.
    let service = Service::builder(index)
        .queue_capacity(1024)
        .max_batch(256)
        .window(Duration::from_micros(50), Duration::from_millis(5))
        .on_full(FullQueuePolicy::Block)
        .start();

    // 3. Bind. Port 0 asks the OS for a free port; the builder exposes the
    //    read/write deadlines and the frame-size cap that bound how much a
    //    slow or malicious peer can cost this process.
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:0".to_string());
    let server = Server::builder(service)
        .read_timeout(Duration::from_secs(30))
        .write_timeout(Duration::from_secs(2))
        .bind(addr)?;
    println!("serving on {}", server.local_addr());
    println!(
        "run: cargo run --release --example net_client -- {}",
        server.local_addr()
    );
    println!("press Enter (or close stdin) to drain and shut down");

    // 4. Serve until the operator says stop. A closed stdin (EOF) returns
    //    immediately, so piping `echo |` through this example exercises a
    //    full bind/serve/drain cycle without hanging.
    let mut line = String::new();
    let _ = std::io::stdin().read_line(&mut line);

    // 5. Graceful drain: stop accepting, let every in-flight ticket
    //    resolve and flush, then shut the service down and report.
    let stats = server.shutdown();
    println!(
        "served {} queries over {} connections ({} severed, all {} drained)",
        stats.completed,
        stats.connections_opened,
        stats.connections_severed,
        stats.connections_drained
    );
    Ok(())
}
