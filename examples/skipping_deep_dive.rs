//! Deep dive into the skipping mechanism (Section 5): how many bounding-box
//! comparisons do the look-ahead pointers save, and what does that cost in
//! index size?
//!
//! Builds the four ablation variants of Figure 13 (Base, Base+SK, WaZI−SK,
//! WaZI) over increasingly selective workloads and prints the work counters.
//!
//! Run with:
//! ```text
//! cargo run --release -p wazi-bench --example skipping_deep_dive
//! ```

use wazi_bench::measure::{format_ns, measure_range_queries};
use wazi_bench::{build_index, IndexKind};
use wazi_workload::{generate_dataset, generate_queries_with_seed, Region, ABLATION_SELECTIVITIES};

fn main() {
    let region = Region::Japan;
    let points = generate_dataset(region, 80_000);

    for &selectivity in &ABLATION_SELECTIVITIES {
        let train = generate_queries_with_seed(region, 2_000, selectivity, 1);
        let eval = generate_queries_with_seed(region, 1_000, selectivity, 2);
        println!("selectivity {:.4}%:", selectivity * 100.0);
        println!(
            "{:<9} {:>12} {:>14} {:>14} {:>14} {:>12}",
            "variant", "latency", "bbs checked", "excess points", "pages scanned", "size (KB)"
        );
        for kind in IndexKind::ABLATION {
            let built = build_index(kind, &points, &train, 256);
            let m = measure_range_queries(built.index.as_ref(), &eval);
            println!(
                "{:<9} {:>12} {:>14.0} {:>14.0} {:>14.0} {:>12.1}",
                kind.name(),
                format_ns(m.mean_latency_ns),
                m.mean_bbs_checked,
                m.mean_excess_points,
                m.mean_pages_scanned,
                built.index.size_bytes() as f64 / 1e3
            );
        }
        println!();
    }
    println!("The +SK variants cut bounding-box checks by one to two orders of magnitude while");
    println!("adaptive partitioning (the WaZI variants) is what reduces excess points and pages");
    println!("scanned — the two mechanisms address different parts of the range-query cost.");
}
