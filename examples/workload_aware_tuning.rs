//! Workload-aware tuning: how much does adapting the layout to the workload
//! buy, compared to the base Z-index and to the other baselines?
//!
//! This example mirrors the motivation of the paper's introduction: a
//! location-based service whose queries concentrate on popular areas that do
//! not coincide with where the data is densest. It builds every index of the
//! evaluation on the same dataset/workload pair and prints a small
//! comparison table.
//!
//! Run with:
//! ```text
//! cargo run --release -p wazi-bench --example workload_aware_tuning
//! ```

use wazi_bench::measure::{format_ns, measure_range_queries};
use wazi_bench::{build_index, IndexKind};
use wazi_workload::{generate_dataset, generate_queries_with_seed, Region, SELECTIVITIES};

fn main() {
    let region = Region::CaliNev;
    let selectivity = SELECTIVITIES[1];
    let points = generate_dataset(region, 80_000);
    let train = generate_queries_with_seed(region, 2_000, selectivity, 1);
    let eval = generate_queries_with_seed(region, 2_000, selectivity, 2);

    println!(
        "region {region}: {} points, training/evaluation workloads of {} queries at {:.4}% selectivity",
        points.len(),
        train.len(),
        selectivity * 100.0
    );
    println!(
        "{:<8} {:>12} {:>12} {:>14} {:>12} {:>12}",
        "index", "build", "latency", "points/query", "bbs/query", "size (KB)"
    );
    for kind in IndexKind::PRIMARY {
        let built = build_index(kind, &points, &train, 256);
        let m = measure_range_queries(built.index.as_ref(), &eval);
        println!(
            "{:<8} {:>12} {:>12} {:>14.0} {:>12.0} {:>12.1}",
            kind.name(),
            format_ns(built.build_ns as f64),
            format_ns(m.mean_latency_ns),
            m.mean_points_scanned,
            m.mean_bbs_checked,
            built.index.size_bytes() as f64 / 1e3
        );
    }
    println!();
    println!("The workload-aware indexes (WaZI, CUR, Flood, QUASII) trade construction time");
    println!("for lower query latency; WaZI additionally keeps point queries cheap because its");
    println!("per-node computation is two comparisons and an ordering lookup (Algorithm 1).");
}
